"""Event-loop HTTP front-end: one thread, thousands of connections.

The threaded front-end (:mod:`repro.serve.http`) spends one OS thread
per connection, most of it parked on ``ticket.result`` — at thousands of
keep-alive clients the thread stacks and scheduler churn dominate, not
the sampling engines.  This server holds every connection in a single
``selectors`` loop instead:

* **Non-blocking everything** — accept, read and write all happen on
  ready sockets only; a slow client costs one ``Connection`` object, not
  a thread.
* **Incremental parsing** — bytes go into a per-connection
  :class:`~repro.serve.protocol.HTTPRequestParser`; requests may arrive
  split at any byte boundary or several per read (pipelining), and an
  oversized ``Content-Length`` is refused at the header boundary.
* **Push-based query completion** — ``/query`` submits to the
  :class:`~repro.serve.GraphService` and registers a
  ``ticket.add_done_callback``; the dispatcher thread's callback drops
  the finished ticket onto a completion queue and tickles a self-pipe,
  which wakes the loop to render and write the response.  The loop never
  blocks on a ticket.
* **Pipelining-safe response slots** — each request reserves an ordered
  slot on its connection; responses are written strictly in request
  order no matter which ticket resolves first.
* **Write queues** — responses (including zero-copy binary walk
  matrices, see :mod:`repro.serve.wire`) are queued as bytes-like parts
  and drained on ``EVENT_WRITE`` readiness; a peer that hangs up
  mid-response increments ``client_disconnects`` instead of printing a
  traceback.

Routing, validation and error mapping are the shared
:mod:`repro.serve.protocol` module, so behaviour cannot drift from the
threaded server.

One deployment caveat: admission control must *reject*, not block.  A
:class:`~repro.serve.tenancy.TenantQuota` with ``block_when_full=True``
(the no-tenancy default lane) parks the submitting thread — which here
is the event loop itself.  ``bingo-repro serve --event-loop`` and the
benchmarks configure rejecting quotas; do the same in your own wiring.
"""

from __future__ import annotations

import selectors
import socket
import threading
import time
from collections import deque

from repro.serve import protocol
from repro.serve.config import UNSET, ServiceConfig, resolve_transport_kwargs
from repro.serve.faults import FaultInjector
from repro.serve.protocol import (
    DEFAULT_QUERY_TIMEOUT,
    DEFAULT_RETRY_AFTER_SECONDS,
    MAX_BODY_BYTES,
    RETRYABLE_STATUSES,
    HTTPParseError,
    HTTPRequestParser,
    ParsedRequest,
    PendingQuery,
    Response,
)
from repro.serve.service import GraphService

#: Seconds an incomplete request may sit idle before the connection is
#: answered with 400 and closed (parity with the threaded server's
#: ``body_timeout`` bounding under-delivering clients).
DEFAULT_BODY_TIMEOUT = 10.0

#: Reason phrases for the statuses this server actually emits.
_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _Slot:
    """One in-order response slot on a connection.

    Requests reserve slots in arrival order; a slot becomes ``ready``
    when its response parts are known, and the connection flushes ready
    slots strictly from the head so pipelined responses cannot reorder.
    """

    __slots__ = ("ready", "parts", "close", "pending", "deadline", "response")

    def __init__(self) -> None:
        self.ready = False
        self.parts: list[bytes | memoryview] = []
        self.close = False
        #: The PendingQuery this slot waits on (None for immediate ones).
        self.pending: PendingQuery | None = None
        #: Monotonic deadline for the server-side query timeout sweep.
        self.deadline: float | None = None
        #: A finished but deferred response (flush_pending ingests).
        self.response: Response | None = None


class _Connection:
    """Per-socket state owned exclusively by the loop thread."""

    __slots__ = (
        "sock",
        "fd",
        "parser",
        "out",
        "out_offset",
        "slots",
        "eof",
        "closed",
        "discard_input",
        "keep_alive",
        "want_write",
        "last_activity",
    )

    def __init__(self, sock: socket.socket, parser: HTTPRequestParser) -> None:
        self.sock = sock
        self.fd = sock.fileno()
        self.parser = parser
        #: Bytes-like chunks awaiting the socket, head partially written.
        self.out: deque[bytes | memoryview] = deque()
        self.out_offset = 0
        #: Ordered response slots (head = oldest outstanding request).
        self.slots: deque[_Slot] = deque()
        self.eof = False
        self.closed = False
        #: Set after a parse error: later bytes are noise on a dead stream.
        self.discard_input = False
        self.keep_alive = True
        self.want_write = False
        self.last_activity = time.monotonic()


class EventLoopHTTPServer:
    """A single-threaded ``selectors`` HTTP server over a GraphService.

    API-compatible with :class:`~repro.serve.http.GraphServiceHTTPServer`
    where it matters (``url``, ``server_address``, ``shutdown()``); use
    :func:`serve_event_loop` to run it on a background thread.
    """

    def __init__(
        self,
        service: GraphService,
        address: tuple[str, int] = ("127.0.0.1", 0),
        *,
        query_timeout: float | None = DEFAULT_QUERY_TIMEOUT,
        body_timeout: float | None = DEFAULT_BODY_TIMEOUT,
        log_requests: bool = False,
        fault_injector: FaultInjector | None = None,
        retry_after_seconds: float = DEFAULT_RETRY_AFTER_SECONDS,
        max_body_bytes: int = MAX_BODY_BYTES,
    ) -> None:
        if not retry_after_seconds > 0:
            raise ValueError("retry_after_seconds must be positive")
        self.service = service
        self.query_timeout = query_timeout
        self.body_timeout = body_timeout
        self.log_requests = bool(log_requests)
        self.fault_injector = fault_injector
        self.retry_after_seconds = float(retry_after_seconds)
        self.max_body_bytes = int(max_body_bytes)

        self._listener = socket.create_server(address, backlog=1024)
        self._listener.setblocking(False)
        self.server_address = self._listener.getsockname()

        # The self-pipe: ticket callbacks run on dispatcher / writer
        # threads; they enqueue the completion and poke the write end to
        # wake a loop that is parked in select().
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._wake_send.setblocking(False)

        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, None)
        self._selector.register(self._wake_recv, selectors.EVENT_READ, None)

        self._connections: dict[int, _Connection] = {}
        self._completions: deque[tuple[_Connection, _Slot]] = deque()
        self._completion_lock = threading.Lock()
        #: Connections holding unresolved query slots (timeout sweep).
        self._waiting: set[_Connection] = set()
        #: Connections holding deferred flush_pending responses.
        self._flush_waiters: set[_Connection] = set()
        #: Connections with a partially-read request (stall sweep).
        self._partial: set[_Connection] = set()

        self._stop = False
        self._done = threading.Event()

    # ------------------------------------------------------------------ #
    # public surface
    # ------------------------------------------------------------------ #
    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def shutdown(self) -> None:
        """Stop the loop and close every connection (idempotent)."""
        self._stop = True
        self._wake()
        self._done.wait(timeout=10.0)

    # Alias matching socketserver's cleanup method.
    def server_close(self) -> None:
        self.shutdown()

    def connection_count(self) -> int:
        """Open client connections (loop-thread accurate, others racy-ok)."""
        return len(self._connections)

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #
    def serve_forever(self) -> None:
        try:
            while not self._stop:
                # Sweeps (query timeouts, flush polls, stalled bodies)
                # need a finite select timeout only when there is
                # something to sweep.
                if self._flush_waiters:
                    timeout = 0.02
                elif self._waiting or self._partial:
                    timeout = 0.05
                else:
                    timeout = 0.5
                events = self._selector.select(timeout)
                for key, _mask in events:
                    if key.fileobj is self._listener:
                        self._accept()
                    elif key.fileobj is self._wake_recv:
                        self._drain_wake()
                    else:
                        conn = key.data
                        if conn is None or conn.closed:
                            continue
                        if _mask & selectors.EVENT_READ:
                            self._read_ready(conn)
                        if not conn.closed and _mask & selectors.EVENT_WRITE:
                            self._write_ready(conn)
                self._drain_completions()
                self._sweep(time.monotonic())
        finally:
            self._teardown()

    # ------------------------------------------------------------------ #
    # accept / read
    # ------------------------------------------------------------------ #
    def _accept(self) -> None:
        # Accept in a loop: one READ event may announce many connections.
        while True:
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - non-TCP sockets
                pass
            conn = _Connection(
                sock, HTTPRequestParser(max_body_bytes=self.max_body_bytes)
            )
            self._connections[conn.fd] = conn
            self._selector.register(sock, selectors.EVENT_READ, conn)

    def _read_ready(self, conn: _Connection) -> None:
        try:
            data = conn.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._disconnect(conn)
            return
        if not data:
            conn.eof = True
            # Keep the connection only while responses are still owed.
            if not conn.slots and not conn.out:
                self._close(conn)
            return
        conn.last_activity = time.monotonic()
        if conn.discard_input:
            return
        try:
            requests = conn.parser.feed(data)
        except HTTPParseError as exc:
            self._parse_failure(conn, exc)
            return
        if conn.parser.idle:
            self._partial.discard(conn)
        else:
            self._partial.add(conn)
        for request in requests:
            if conn.closed:
                break
            self._handle_request(conn, request)

    def _parse_failure(self, conn: _Connection, exc: HTTPParseError) -> None:
        # The stream is desynchronized: answer, then close after flush.
        conn.discard_input = True
        self._partial.discard(conn)
        error: Exception
        if exc.error_type == "PayloadTooLarge":
            error = protocol.PayloadTooLarge(str(exc))
        else:
            error = protocol.BadRequest(str(exc))
        response = protocol.error_response(error, self.retry_after_seconds)
        response.close = True
        slot = _Slot()
        conn.slots.append(slot)
        self._fill_slot(conn, slot, response)

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    def _handle_request(self, conn: _Connection, request: ParsedRequest) -> None:
        if self.log_requests:
            print(
                f"eventloop: {request.method} {request.target} "
                f"({len(request.body)}B body)",
                flush=True,
            )
        slot = _Slot()
        slot.close = not request.keep_alive
        conn.slots.append(slot)
        outcome = protocol.handle_request(
            self.service,
            request.method,
            request.target,
            request.headers,
            request.body or None,
            default_query_timeout=self.query_timeout,
            retry_after_seconds=self.retry_after_seconds,
            fault_injector=self.fault_injector,
            defer_flush=True,
        )
        if isinstance(outcome, PendingQuery):
            slot.pending = outcome
            if outcome.timeout is not None:
                slot.deadline = time.monotonic() + outcome.timeout
            self._waiting.add(conn)
            # The callback may fire on the dispatcher thread, the writer
            # thread, or inline right now (sync service / already-failed
            # ticket) — every path goes through the completion queue so
            # connection state is only ever touched by the loop thread.
            outcome.ticket.add_done_callback(
                lambda _ticket, conn=conn, slot=slot: self._on_ticket_done(
                    conn, slot
                )
            )
            return
        if outcome.flush_pending:
            # A flushing /ingest: hold the finished response until the
            # update queue drains, then restamp the epoch.
            slot.response = outcome
            self._flush_waiters.add(conn)
            return
        self._fill_slot(conn, slot, outcome)

    def _on_ticket_done(self, conn: _Connection, slot: _Slot) -> None:
        """Ticket callback — runs on whatever thread completed the ticket."""
        with self._completion_lock:
            self._completions.append((conn, slot))
        self._wake()

    def _drain_completions(self) -> None:
        while True:
            with self._completion_lock:
                if not self._completions:
                    return
                conn, slot = self._completions.popleft()
            if conn.closed or slot.ready:
                # Connection died, or the timeout sweep already answered
                # 504 for this slot; the late result is dropped.
                continue
            assert slot.pending is not None
            self._fill_slot(conn, slot, slot.pending.finish())

    # ------------------------------------------------------------------ #
    # responses / writing
    # ------------------------------------------------------------------ #
    def _fill_slot(
        self, conn: _Connection, slot: _Slot, response: Response
    ) -> None:
        keep_alive = not (slot.close or response.close)
        slot.parts = self._encode(response, keep_alive)
        slot.close = not keep_alive
        slot.ready = True
        slot.pending = None
        slot.deadline = None
        slot.response = None
        if not any(s.pending is not None for s in conn.slots):
            self._waiting.discard(conn)
        self._flush_ready(conn)

    def _encode(
        self, response: Response, keep_alive: bool
    ) -> list[bytes | memoryview]:
        parts = response.parts()
        reason = _REASONS.get(response.status, "Unknown")
        head = [f"HTTP/1.1 {response.status} {reason}\r\n"]
        head.append(f"Content-Type: {response.content_type}\r\n")
        headers = dict(response.headers)
        if (
            response.status in RETRYABLE_STATUSES
            and "Retry-After" not in headers
        ):
            headers["Retry-After"] = f"{self.retry_after_seconds:g}"
        for name, value in headers.items():
            head.append(f"{name}: {value}\r\n")
        head.append(
            "Connection: keep-alive\r\n" if keep_alive else "Connection: close\r\n"
        )
        if response.chunked:
            head.append("Transfer-Encoding: chunked\r\n\r\n")
            encoded: list[bytes | memoryview] = [
                "".join(head).encode("latin-1")
            ]
            for part in parts:
                view = memoryview(part)
                if view.nbytes:
                    encoded.append(b"%x\r\n" % view.nbytes)
                    encoded.append(view)
                    encoded.append(b"\r\n")
            encoded.append(b"0\r\n\r\n")
            return encoded
        length = response.content_length(parts)
        head.append(f"Content-Length: {length}\r\n\r\n")
        encoded = ["".join(head).encode("latin-1")]
        encoded.extend(part for part in parts if memoryview(part).nbytes)
        return encoded

    def _flush_ready(self, conn: _Connection) -> None:
        """Move ready head slots into the write queue, then write."""
        close_after = False
        while conn.slots and conn.slots[0].ready:
            slot = conn.slots.popleft()
            conn.out.extend(slot.parts)
            slot.parts = []
            if slot.close:
                close_after = True
                conn.slots.clear()
                break
        if close_after:
            conn.keep_alive = False
        self._write_ready(conn)

    def _write_ready(self, conn: _Connection) -> None:
        try:
            while conn.out:
                head = conn.out[0]
                view = memoryview(head)
                if conn.out_offset:
                    view = view[conn.out_offset :]
                sent = conn.sock.send(view)
                if sent < view.nbytes:
                    conn.out_offset += sent
                    self._set_want_write(conn, True)
                    return
                conn.out.popleft()
                conn.out_offset = 0
        except (BlockingIOError, InterruptedError):
            self._set_want_write(conn, True)
            return
        except OSError:
            # BrokenPipe / ConnectionReset / anything else socket-fatal:
            # the peer hung up mid-response.
            self._disconnect(conn)
            return
        self._set_want_write(conn, False)
        if not conn.keep_alive and not conn.slots:
            self._close(conn)
        elif conn.eof and not conn.slots:
            self._close(conn)

    def _set_want_write(self, conn: _Connection, want: bool) -> None:
        if conn.closed or want == conn.want_write:
            return
        conn.want_write = want
        events = selectors.EVENT_READ
        if want:
            events |= selectors.EVENT_WRITE
        self._selector.modify(conn.sock, events, conn)

    # ------------------------------------------------------------------ #
    # sweeps (timeouts, flush polls)
    # ------------------------------------------------------------------ #
    def _sweep(self, now: float) -> None:
        if self._waiting:
            for conn in list(self._waiting):
                if conn.closed:
                    self._waiting.discard(conn)
                    continue
                for slot in list(conn.slots):
                    if (
                        slot.pending is not None
                        and slot.deadline is not None
                        and now >= slot.deadline
                    ):
                        # Server-side query timeout: answer 504 now; the
                        # late ticket completion is dropped in
                        # _drain_completions because the slot is ready.
                        pending = slot.pending
                        slot.pending = None
                        self._fill_slot(conn, slot, pending.timeout_response())
        if self._flush_waiters and self.service.pending_updates() == 0:
            for conn in list(self._flush_waiters):
                self._flush_waiters.discard(conn)
                if conn.closed:
                    continue
                for slot in list(conn.slots):
                    if slot.response is not None and not slot.ready:
                        response = slot.response
                        try:
                            # Queue is drained; surface any writer
                            # failure exactly like a blocking flush().
                            self.service.flush()
                        except Exception as exc:  # noqa: BLE001
                            response = protocol.error_response(
                                exc, self.retry_after_seconds
                            )
                        else:
                            if response.payload is not None:
                                response.payload["epoch"] = self.service.epoch
                        self._fill_slot(conn, slot, response)
        if self._partial and self.body_timeout is not None:
            deadline = now - self.body_timeout
            for conn in list(self._partial):
                if conn.closed or conn.parser.idle:
                    self._partial.discard(conn)
                    continue
                if conn.last_activity <= deadline:
                    self._parse_failure(
                        conn,
                        HTTPParseError(
                            400,
                            "timed out reading the request (fewer bytes "
                            "sent than declared)",
                        ),
                    )

    # ------------------------------------------------------------------ #
    # teardown
    # ------------------------------------------------------------------ #
    def _disconnect(self, conn: _Connection) -> None:
        """A peer vanished with work still owed — count it, then close."""
        if not conn.closed and (conn.out or conn.slots):
            self.service.note_client_disconnect()
        self._close(conn)

    def _close(self, conn: _Connection) -> None:
        if conn.closed:
            return
        conn.closed = True
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        self._connections.pop(conn.fd, None)
        self._waiting.discard(conn)
        self._flush_waiters.discard(conn)
        self._partial.discard(conn)
        conn.out.clear()
        conn.slots.clear()

    def _wake(self) -> None:
        try:
            self._wake_send.send(b"\x01")
        except (BlockingIOError, InterruptedError):
            pass  # pipe already full: the loop is awake anyway
        except OSError:
            pass  # torn down concurrently

    def _drain_wake(self) -> None:
        while True:
            try:
                if not self._wake_recv.recv(4096):
                    return
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return

    def _teardown(self) -> None:
        for conn in list(self._connections.values()):
            self._close(conn)
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        try:
            self._selector.unregister(self._wake_recv)
        except (KeyError, ValueError):
            pass
        self._listener.close()
        self._wake_recv.close()
        self._wake_send.close()
        self._selector.close()
        self._done.set()


def serve_event_loop(
    service: GraphService,
    host=UNSET,
    port=UNSET,
    *,
    config: ServiceConfig | None = None,
    query_timeout=UNSET,
    body_timeout=UNSET,
    log_requests=UNSET,
    fault_injector: FaultInjector | None = None,
    retry_after_seconds=UNSET,
    max_body_bytes=UNSET,
) -> tuple[EventLoopHTTPServer, threading.Thread]:
    """Start the event-loop front-end on a daemon thread.

    Mirrors :func:`repro.serve.http.serve_http`: returns the bound
    server (``server.url`` has the resolved port) and the loop thread;
    ``server.shutdown()`` stops it without closing the service.
    Transport knobs come from ``config``
    (:class:`~repro.serve.config.ServiceConfig`); the individual kwargs
    are deprecation shims that override it.
    """
    knobs = resolve_transport_kwargs(
        config,
        "serve_event_loop",
        host=(host, "127.0.0.1"),
        port=(port, 0),
        query_timeout=(query_timeout, DEFAULT_QUERY_TIMEOUT),
        body_timeout=(body_timeout, DEFAULT_BODY_TIMEOUT),
        log_requests=(log_requests, False),
        retry_after_seconds=(retry_after_seconds, DEFAULT_RETRY_AFTER_SECONDS),
        max_body_bytes=(max_body_bytes, MAX_BODY_BYTES),
    )
    server = EventLoopHTTPServer(
        service,
        (knobs["host"], knobs["port"]),
        query_timeout=knobs["query_timeout"],
        body_timeout=knobs["body_timeout"],
        log_requests=knobs["log_requests"],
        fault_injector=fault_injector,
        retry_after_seconds=knobs["retry_after_seconds"],
        max_body_bytes=knobs["max_body_bytes"],
    )
    thread = threading.Thread(
        target=server.serve_forever, name="graph-service-eventloop", daemon=True
    )
    thread.start()
    return server, thread


__all__ = [
    "DEFAULT_BODY_TIMEOUT",
    "EventLoopHTTPServer",
    "serve_event_loop",
]
