"""Deterministic fault injection for the serve layer (the chaos harness).

The serving guarantee this repo grows toward is the paper's always-fresh
contract: a fault may cost latency, never a wrong or hung answer.  Proving
that needs faults on demand — and *replayable* ones, so a failing chaos
run can be reproduced byte for byte.  This module provides both halves:

* :class:`FaultPlan` — a schedule of fault actions keyed by
  ``(injection point, occurrence index)``.  Plans are built explicitly
  (``plan.fail("writer.apply", 2)``) or sampled deterministically from a
  seed (:meth:`FaultPlan.sample`), so the same seed always produces the
  same fault sequence.

* :class:`FaultInjector` — the thread-safe runtime half.  Production code
  is threaded with named injection points (:data:`FAULT_POINTS`); each
  ``injector.fire(point)`` call counts one occurrence, looks the pair up
  in the plan and either raises an :class:`~repro.errors.InjectedFault`,
  sleeps a scheduled delay, or hands a ``kill_worker`` action back to the
  call site (only the shard runner can actually kill a worker process).
  Every fired action lands in :meth:`FaultInjector.history`, which is what
  the chaos experiment compares across two same-seed runs to assert
  replayability.

A ``None`` injector everywhere means zero overhead on the production
path: call sites guard with ``if self._faults is not None``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from collections.abc import Iterable, Mapping

import numpy as np

from repro.errors import InjectedFault, ServeError

#: Every named injection point threaded through the serve layer.
#:
#: ==================  =====================================================
#: ``writer.apply``    writer thread, before applying a queued batch to the
#:                     back engine (and before the rebuild replay during
#:                     recovery warms)
#: ``writer.warm``     writer thread, before pre-building the back buffer's
#:                     fused frontier tables (publication *and* recovery)
#: ``dispatcher.wave`` dispatcher thread, before executing one fused wave
#: ``worker.step``     shard-walk coordinator, before routing one step's
#:                     hand-off messages (``kill_worker`` actions fire here)
#: ``router.dispatch`` shard-serve router, before fanning one fused group
#:                     out to the shard serve processes (``kill_worker``
#:                     actions SIGKILL the named shard serve process here)
#: ``http.handler``    HTTP front-end, at the top of every request handler
#: ==================  =====================================================
FAULT_POINTS = (
    "writer.apply",
    "writer.warm",
    "dispatcher.wave",
    "worker.step",
    "router.dispatch",
    "http.handler",
)

#: Action kinds a plan entry can schedule.
_KINDS = ("raise", "delay", "kill_worker")


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault: what happens when its (point, index) fires.

    ``raise`` actions raise :class:`~repro.errors.InjectedFault` inside
    :meth:`FaultInjector.fire`; ``delay`` actions sleep
    ``delay_seconds`` there; ``kill_worker`` actions are *returned* to the
    call site, which SIGKILLs shard ``worker`` — the injector itself never
    touches processes.
    """

    kind: str
    delay_seconds: float = 0.0
    worker: int = 0
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ServeError(
                f"unknown fault action kind {self.kind!r}; one of: "
                + ", ".join(_KINDS)
            )
        if self.kind == "delay" and not self.delay_seconds > 0:
            raise ServeError("delay fault actions need positive delay_seconds")
        if self.worker < 0:
            raise ServeError("kill_worker target shard must be non-negative")


class FaultPlan:
    """A replayable schedule of faults keyed by (point, occurrence index).

    Builder methods chain::

        plan = (
            FaultPlan()
            .fail("writer.apply", 1, message="poisoned batch")
            .delay("dispatcher.wave", 0, 0.05)
            .kill_worker("worker.step", 3, shard=1)
        )
    """

    def __init__(self) -> None:
        self._actions: dict[tuple[str, int], FaultAction] = {}

    # ------------------------------------------------------------------ #
    # builders
    # ------------------------------------------------------------------ #
    def _put(self, point: str, index: int, action: FaultAction) -> FaultPlan:
        if point not in FAULT_POINTS:
            raise ServeError(
                f"unknown injection point {point!r}; one of: "
                + ", ".join(FAULT_POINTS)
            )
        if index < 0:
            raise ServeError("fault occurrence index must be non-negative")
        self._actions[(point, int(index))] = action
        return self

    def fail(self, point: str, index: int, *, message: str = "") -> FaultPlan:
        """Raise :class:`InjectedFault` the ``index``-th time ``point`` fires."""
        return self._put(point, index, FaultAction(kind="raise", message=message))

    def delay(self, point: str, index: int, seconds: float) -> FaultPlan:
        """Sleep ``seconds`` the ``index``-th time ``point`` fires."""
        return self._put(
            point, index, FaultAction(kind="delay", delay_seconds=float(seconds))
        )

    def kill_worker(self, point: str, index: int, *, shard: int) -> FaultPlan:
        """Hand a SIGKILL-shard-``shard`` action to the ``index``-th firing."""
        return self._put(
            point, index, FaultAction(kind="kill_worker", worker=int(shard))
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def sample(
        cls,
        seed: int,
        rates: Mapping[str, float],
        horizon: int,
        *,
        delay_seconds: float = 0.0,
    ) -> FaultPlan:
        """Draw a random-but-reproducible plan from ``seed``.

        For every point in ``rates``, each occurrence index below
        ``horizon`` independently schedules a fault with the given
        probability — a ``delay`` when ``delay_seconds`` is positive,
        otherwise a ``raise``.  The same ``(seed, rates, horizon)`` always
        yields the identical plan, which is what makes seeded chaos runs
        replayable.
        """
        if horizon < 0:
            raise ServeError("fault plan horizon must be non-negative")
        plan = cls()
        rng = np.random.default_rng(int(seed))
        # Iterate points in the canonical FAULT_POINTS order so the draw
        # sequence (and therefore the plan) never depends on dict order.
        for point in FAULT_POINTS:
            rate = rates.get(point)
            if rate is None:
                continue
            if not 0.0 <= rate <= 1.0:
                raise ServeError(f"fault rate for {point!r} must lie in [0, 1]")
            hits = rng.random(horizon) < rate
            for index in np.flatnonzero(hits):
                if delay_seconds > 0:
                    plan.delay(point, int(index), delay_seconds)
                else:
                    plan.fail(point, int(index), message="sampled chaos fault")
        return plan

    # ------------------------------------------------------------------ #
    def get(self, point: str, index: int) -> FaultAction | None:
        return self._actions.get((point, index))

    def entries(self) -> list[tuple[str, int, FaultAction]]:
        """The schedule in deterministic (point, index) order."""
        return [
            (point, index, action)
            for (point, index), action in sorted(self._actions.items())
        ]

    def __len__(self) -> int:
        return len(self._actions)


class FaultInjector:
    """Thread-safe runtime that fires a :class:`FaultPlan`'s schedule.

    One injector is shared by every thread of a service (writer,
    dispatcher, HTTP handlers, the shard-walk coordinator); the per-point
    occurrence counters and the history log are guarded by one lock.
    """

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {point: 0 for point in FAULT_POINTS}
        self._history: list[tuple[str, int, str]] = []

    def fire(self, point: str) -> FaultAction | None:
        """Count one occurrence of ``point`` and act on any scheduled fault.

        Raises :class:`~repro.errors.InjectedFault` for ``raise`` actions,
        sleeps for ``delay`` actions (returning ``None`` afterwards), and
        returns ``kill_worker`` actions for the call site to execute.
        Unscheduled occurrences return ``None`` immediately.
        """
        with self._lock:
            if point not in self._counters:
                raise ServeError(
                    f"unknown injection point {point!r}; one of: "
                    + ", ".join(FAULT_POINTS)
                )
            index = self._counters[point]
            self._counters[point] = index + 1
            action = self.plan.get(point, index)
            if action is not None:
                self._history.append((point, index, action.kind))
        if action is None:
            return None
        if action.kind == "delay":
            time.sleep(action.delay_seconds)
            return None
        if action.kind == "raise":
            raise InjectedFault(point, index, action.message)
        return action

    # ------------------------------------------------------------------ #
    def occurrences(self, point: str) -> int:
        """How many times ``point`` has fired so far."""
        with self._lock:
            return self._counters.get(point, 0)

    def counters(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def history(self) -> list[tuple[str, int, str]]:
        """Every fault that actually fired, in firing order.

        Two same-seed chaos runs must produce equal histories — this is
        the replayability assertion the chaos experiment gates on.
        """
        with self._lock:
            return list(self._history)

    def reset(self) -> None:
        """Zero the counters and the history (plan unchanged)."""
        with self._lock:
            self._counters = {point: 0 for point in FAULT_POINTS}
            self._history = []


def chaos_points(entries: Iterable[tuple[str, int, str]]) -> list[str]:
    """Compact ``point@index:kind`` labels for logs and JSON artifacts."""
    return [f"{point}@{index}:{kind}" for point, index, kind in entries]


__all__ = [
    "FAULT_POINTS",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "chaos_points",
]
