"""Query and result types for the streaming serve layer.

A :class:`WalkQuery` describes one walk request (application, start
vertices, length and hyper-parameters); :class:`GraphService.submit`
wraps it in a :class:`QueryTicket` — a tiny future the caller waits on —
and the dispatcher fuses compatible queries into one frontier run.  The
resolved :class:`ServeResult` carries the dense walk matrix plus the
epoch of the snapshot that served it, which is what the consistency
tests check snapshot isolation against.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.errors import (
    QueryTimeoutError,
    QueryValidationError,
    ReproError,
    ServeError,
)
from repro.utils.rng import AnyRngSource
from repro.walks.frontier import BatchedWalks

#: Applications the serve layer understands (the paper's Table 3 set).
SERVE_APPLICATIONS = ("deepwalk", "ppr", "node2vec")

#: Tenant id used when the caller does not name one.
DEFAULT_TENANT = "default"


def deadline_in(seconds: float) -> float:
    """An absolute :class:`WalkQuery` deadline ``seconds`` from now.

    Deadlines are absolute ``time.monotonic()`` timestamps so they keep
    meaning while a query sits in a tenant lane — the dispatcher drops
    expired queries *before* fusing them (see
    :class:`~repro.errors.QueryExpiredError`).
    """
    if not seconds > 0:
        raise QueryValidationError("deadline seconds must be positive")
    return time.monotonic() + float(seconds)


def validate_starts(starts, num_vertices: int) -> list[int]:
    """Check query start vertices against the serving snapshot.

    The serve boundary is the trust boundary: the walk kernels downstream
    assume in-range int64 vertex ids, and violations do not crash — they
    produce garbage (an out-of-range id is served as ``[[9999, -1]]``, a
    negative id wraps onto some other vertex's tables, a float is silently
    truncated).  Reject all three shapes with a clean
    :class:`~repro.errors.QueryValidationError` naming the offending value.

    Returns the starts as a plain list of Python ints (possibly empty).
    """
    items = list(starts)
    array = np.asarray(items)
    if array.ndim != 1:
        raise QueryValidationError(
            "start vertices must be a flat sequence of vertex ids, got an "
            f"array of shape {array.shape}"
        )
    if array.size == 0:
        return []
    if not np.issubdtype(array.dtype, np.integer):
        if not np.issubdtype(array.dtype, np.floating):
            raise QueryValidationError(
                "start vertices must be integers, got "
                f"{array.dtype} ({items[0]!r}, ...)"
            )
        integral = np.isfinite(array) & (array == np.floor(array))
        if not integral.all():
            offender = float(array[~integral][0])
            raise QueryValidationError(
                f"non-integral start vertex {offender!r}: start vertices "
                "must be whole numbers, not truncated floats"
            )
        array = array.astype(np.int64)
    in_range = (array >= 0) & (array < num_vertices)
    if not in_range.all():
        offender = int(array[~in_range][0])
        raise QueryValidationError(
            f"start vertex {offender} does not exist in the serving snapshot "
            f"(valid ids: 0 .. {num_vertices - 1})"
        )
    return [int(v) for v in array]


@dataclass
class WalkQuery:
    """One walk request against the currently published snapshot.

    ``params`` carries the application hyper-parameters; missing entries
    are resolved to the paper defaults the benchmark harness uses
    (node2vec ``p=0.5, q=2``; PPR termination ``1/walk_length`` with a
    ``4 * walk_length`` step cap) so service queries and harness walks
    stay comparable.
    """

    application: str
    starts: Sequence[int]
    walk_length: int
    #: Walk randomness.  Live generators are only honoured when the query
    #: runs alone (sync mode / unfused); fused groups draw from a stream
    #: derived from the service seed.
    rng: AnyRngSource = None
    params: dict[str, float] = field(default_factory=dict)
    #: Absolute ``time.monotonic()`` deadline (see :func:`deadline_in`).
    #: The dispatcher fails queries whose deadline passed while queued with
    #: :class:`~repro.errors.QueryExpiredError` instead of fusing them.
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.application not in SERVE_APPLICATIONS:
            raise QueryValidationError(
                f"unknown application {self.application!r}; available: "
                + ", ".join(SERVE_APPLICATIONS)
            )
        if self.walk_length < 1:
            raise QueryValidationError("walk_length must be positive")
        if self.deadline is not None and not float(self.deadline) > 0:
            raise QueryValidationError(
                "deadline must be a positive time.monotonic() timestamp; "
                "use repro.serve.deadline_in(seconds)"
            )

    def expired(self, now: float | None = None) -> bool:
        """Whether the deadline passed (always ``False`` without one)."""
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline

    def resolved_params(self) -> dict[str, float]:
        """Hyper-parameters with the paper defaults filled in."""
        params = dict(self.params)
        if self.application == "node2vec":
            params.setdefault("p", 0.5)
            params.setdefault("q", 2.0)
        elif self.application == "ppr":
            params.setdefault("termination_probability", 1.0 / self.walk_length)
            params.setdefault("max_steps", 4 * self.walk_length)
        return params

    def fuse_key(self) -> tuple:
        """Queries with equal keys may share one fused frontier run."""
        return (
            self.application,
            self.walk_length,
            tuple(sorted(self.resolved_params().items())),
        )


@dataclass
class ServeResult:
    """The resolved output of one walk query."""

    walks: BatchedWalks
    #: Epoch of the snapshot the query ran against.
    epoch: int
    #: Wall-clock seconds from submission to completion (includes queueing).
    latency_seconds: float
    #: How many queries shared the fused frontier run (1 = ran alone).
    fused_with: int = 1


class QueryTicket:
    """A waitable handle for one submitted :class:`WalkQuery`.

    ``tenant`` names the submitting tenant — admission, fair-share
    scheduling and the per-tenant latency windows key off it.

    Completion is observable two ways: pull (:meth:`result` blocks on an
    event — what the threaded HTTP front-end does) and push
    (:meth:`add_done_callback` — what the event-loop front-end uses to
    resume a connection without parking a thread per request).
    """

    def __init__(self, query: WalkQuery, tenant: str = DEFAULT_TENANT) -> None:
        self.query = query
        self.tenant = tenant
        self.submitted_at = time.perf_counter()
        self._event = threading.Event()
        self._result: ServeResult | None = None
        self._error: BaseException | None = None
        self._callback_lock = threading.Lock()
        self._callbacks: list = []

    # ------------------------------------------------------------------ #
    # dispatcher side
    # ------------------------------------------------------------------ #
    def resolve(self, walks: BatchedWalks, epoch: int, fused_with: int) -> float:
        """Complete the ticket; returns the measured latency.

        First completion wins — a ticket failed by a racing ``close()``
        stays failed.
        """
        latency = time.perf_counter() - self.submitted_at
        with self._callback_lock:
            if self._event.is_set():
                return latency
            self._result = ServeResult(
                walks=walks,
                epoch=epoch,
                latency_seconds=latency,
                fused_with=fused_with,
            )
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self._invoke_callback(callback)
        return latency

    def fail(self, error: BaseException) -> None:
        with self._callback_lock:
            if self._event.is_set():
                return
            self._error = error
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self._invoke_callback(callback)

    def _invoke_callback(self, callback) -> None:
        # A broken completion callback must never wedge the thread that
        # completed the ticket (the dispatcher or the writer) — the
        # ticket is already resolved, the callback is best-effort.
        try:
            callback(self)
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # caller side
    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        return self._event.is_set()

    def add_done_callback(self, callback) -> None:
        """Call ``callback(ticket)`` exactly once when the ticket completes.

        Fires immediately (on the registering thread) when the ticket is
        already complete; otherwise fires on whichever thread completes
        it — the dispatcher for resolved walks, the dispatcher/writer/
        closer for failures.  Registration and completion are serialized
        under one lock, so a callback registered concurrently with
        :meth:`resolve`/:meth:`fail` fires exactly once, never zero or
        two times.  Exceptions raised by the callback are swallowed: a
        broken consumer cannot wedge the dispatcher.
        """
        with self._callback_lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        self._invoke_callback(callback)

    def result(self, timeout: float | None = None) -> ServeResult:
        """Block until the query resolves and return its result."""
        if not self._event.wait(timeout):
            raise QueryTimeoutError("timed out waiting for a walk query result")
        if self._error is not None:
            if isinstance(self._error, ReproError):
                raise self._error
            raise ServeError(f"walk query failed: {self._error!r}") from self._error
        assert self._result is not None
        return self._result


#: Most recent per-query samples kept for the latency/fusion windows.  A
#: long-lived service serves unbounded queries; the percentile windows stay
#: bounded (~0.5 MB) while the scalar counters remain exact and cumulative.
STATS_WINDOW = 65_536


@dataclass
class ServeStats:
    """Cumulative execution statistics of one :class:`GraphService`.

    Busy times are per-thread CPU seconds (``time.thread_time``), so the
    writer and query figures can be compared as if each ran on its own
    device — the same critical-path convention the shard-parallel runner
    and the fig12 batched-update model use.  ``latencies`` and
    ``fused_sizes`` are sliding windows of the most recent
    :data:`STATS_WINDOW` samples; every other field is exact.
    """

    epochs_published: int = 0
    batches_ingested: int = 0
    #: Logical updates applied (each batch counted once).
    updates_applied: int = 0
    #: Updates replayed onto the trailing buffer by double-buffer catch-up.
    catchup_updates: int = 0
    queries_served: int = 0
    fused_groups: int = 0
    fused_sizes: deque[int] = field(
        default_factory=lambda: deque(maxlen=STATS_WINDOW)
    )
    total_walk_steps: int = 0
    #: Writer-thread CPU seconds inside apply/catch-up/publish.
    update_busy_seconds: float = 0.0
    #: Writer-thread CPU seconds pre-building fused frontier tables.
    warm_seconds: float = 0.0
    #: Epochs whose back buffer was warmed before publication.
    epochs_warmed: int = 0
    #: Vertex slices re-derived by warming (the published epoch deltas).
    warm_vertices: int = 0
    #: Of the warmed epochs: how many fell back to a full table rebuild
    #: (cold first build or amortized compaction) instead of a delta.
    warm_full_rebuilds: int = 0
    #: Of which: shard-runner refresh folded into epoch publication.
    refresh_seconds: float = 0.0
    #: Dispatcher-thread CPU seconds inside fused walk execution.
    query_busy_seconds: float = 0.0
    #: Writer failures survived by quarantine + back-buffer rebuild.
    writer_recoveries: int = 0
    #: Update batches quarantined into the dead-letter list (dropped).
    batches_quarantined: int = 0
    #: Wall seconds the writer spent rebuilding after failures (MTTR sum).
    recovery_seconds: float = 0.0
    #: Dead shard workers replaced from the existing shared-memory shards.
    worker_respawns: int = 0
    #: Fused waves retried once after a worker crash.
    wave_retries: int = 0
    #: Queries dropped because their deadline passed before fusing.
    queries_expired: int = 0
    #: Peers that closed mid-response (``BrokenPipeError`` /
    #: ``ConnectionResetError`` while a front-end wrote to them).  A
    #: client hanging up is its prerogative, not a server traceback.
    client_disconnects: int = 0
    latencies: deque[float] = field(
        default_factory=lambda: deque(maxlen=STATS_WINDOW)
    )

    def mean_fused_queries(self) -> float:
        if not self.fused_sizes:
            return 0.0
        return float(np.mean(self.fused_sizes))

    def latency_percentiles(self) -> dict[str, float]:
        """p50 / p99 query latency in seconds (zeros when nothing ran)."""
        if not self.latencies:
            return {"p50": 0.0, "p99": 0.0}
        samples = np.asarray(self.latencies, dtype=np.float64)
        return {
            "p50": float(np.percentile(samples, 50)),
            "p99": float(np.percentile(samples, 99)),
        }
