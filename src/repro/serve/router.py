"""Sharded multi-process serving: a router front process over shard engines.

:class:`RouterService` is the scale-out face of the serve layer.  The
front process owns the HTTP event loop, validation, tenancy and the
epoch writer exactly as :class:`~repro.serve.service.GraphService` does;
what changes is execution: every fused query group fans out to ``N``
shard serve processes (:mod:`repro.serve.shard_worker`), each running an
engine built via ``for_shard`` over the PR 3 shared-memory CSR export,
and the per-shard walk matrices are reassembled into one bitwise-stable
response.

Three properties carry the design:

* **Whole walks, not per-step hand-offs.**  Every worker adopts the
  writer's *global* fused frontier tables
  (:meth:`export_frontier_state`), so a walker never needs another
  shard's sampler mid-walk — the router splits a group once by start
  vertex, each shard runs its subset's entire walks locally, and the
  replies paste back by position.  With one shard the worker draws from
  byte-for-byte the generator the in-process service would use, so the
  sharded response is **bitwise identical** to the single-process one.

* **O(touched) epoch flips.**  The writer keeps the double-buffered
  engine pair of the single-process service; after each batch is applied
  and delta-warmed, :meth:`RouterService._publish` serializes the update
  batch's columns plus *only the touched* ``SlicedTableStore`` slices
  (:meth:`export_frontier_patch`) into one shared-memory block and
  broadcasts a flip.  Every shard patches in place and tags subsequent
  replies with the new epoch — nothing re-pickles the world.

* **Crash containment (the PR 7 chaos contract).**  Workers reply over
  private pipes; a SIGKILLed shard surfaces as
  :class:`~repro.errors.WorkerCrashError`, the router respawns it from a
  fresh export of the current snapshot and retries the fan-out once —
  queries are re-dispatched deterministically (same seed keys), so the
  retry returns the same bytes the un-killed run would have.  Zero hung
  tickets, by the same resolve-or-fail discipline the in-process
  dispatcher keeps.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from multiprocessing import shared_memory
from collections.abc import Sequence

import numpy as np

from repro.engines.registry import ENGINE_REGISTRY
from repro.engines.sliced_tables import pack_arrays
from repro.errors import ParallelExecutionError, ServeError, WorkerCrashError
from repro.graph.partition import SharedGraphShards, partition_graph
from repro.serve.service import GraphService
from repro.serve.shard_worker import (
    EPOCH_KEY,
    FULL_STATE_KEY,
    execute_walk,
    shard_serve_main,
)
from repro.utils.validation import check_positive_int
from repro.walks.frontier import BatchedWalks
from repro.walks.parallel import wait_worker_reply


class ShardStreamKey(tuple):
    """A fused group's rng as a *seed key*, not a live generator.

    Live ``numpy.random.Generator`` objects cannot cross the process
    boundary by reference, so the router's :meth:`RouterService._group_rng`
    hands out the entropy instead: ``default_rng(list(key))`` on the
    worker reproduces exactly the generator the in-process service would
    build from the same entropy (single shard), and ``key + (shard,)``
    spreads multiple shards onto deterministically distinct streams.
    """

    __slots__ = ()


# --------------------------------------------------------------------------- #
# pure reassembly (unit-testable without processes)
# --------------------------------------------------------------------------- #
def reassemble(
    total_rows: int,
    parts: Sequence[tuple[np.ndarray, np.ndarray]],
    *,
    fallback_width: int,
) -> np.ndarray:
    """Paste per-shard walk matrices back into one dense response.

    ``parts`` is ``[(positions, matrix), ...]`` where ``positions`` are
    the rows of the fused group each shard served, in any arrival order.
    Shards trim their matrices independently (a shard whose walkers all
    retired early replies narrow); the result takes the widest reply —
    which equals the single-process trim, because the global longest walk
    lives on some shard — and leaves shorter rows ``-1``-padded exactly
    as the serial frontier does.  ``fallback_width`` (the declared
    ``walk_length + 1``) only applies when there are no parts at all,
    matching the serial driver's empty-frontier convention.
    """
    width = max((matrix.shape[1] for _, matrix in parts), default=fallback_width)
    out = np.full((total_rows, width), -1, dtype=np.int64)
    for positions, matrix in parts:
        if len(positions):
            out[positions, : matrix.shape[1]] = matrix
    return out


def discard_stale(
    parts: Sequence[tuple[np.ndarray, np.ndarray, int]], epoch: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Drop shard replies tagged with a different epoch than dispatched.

    ``parts`` is ``[(positions, matrix, reply_epoch), ...]``.  A stale
    tag means the reply was computed against another snapshot — mixing
    it into the response would break snapshot isolation, so it is
    discarded and the shard re-asked (the pool's inline equivalent).
    """
    return [
        (positions, matrix)
        for positions, matrix, reply_epoch in parts
        if reply_epoch == epoch
    ]


def reference_shard_walks(
    engine,
    application: str,
    starts: np.ndarray,
    owners: np.ndarray,
    walk_length: int,
    params: dict,
    seed_key: Sequence[int],
    num_shards: int,
) -> np.ndarray:
    """The sharded run executed in-process: the router's pinned reference.

    Runs each shard's subset on ``engine`` with the exact per-shard
    generator scheme the pool ships to its workers, then reassembles.
    The distributed result must equal this byte for byte — the
    reassembly tests pin it for every engine.
    """
    parts: list[tuple[np.ndarray, np.ndarray]] = []
    for shard in range(num_shards):
        positions = np.flatnonzero(owners == shard)
        if len(positions) == 0:
            continue
        key = tuple(seed_key) if num_shards == 1 else tuple(seed_key) + (shard,)
        rng = np.random.default_rng(list(key))
        walks = execute_walk(
            engine, application, starts[positions], walk_length, params, rng
        )
        parts.append((positions, walks.matrix))
    fallback = _fallback_width(application, walk_length, params)
    return reassemble(len(starts), parts, fallback_width=fallback)


def _fallback_width(application: str, walk_length: int, params: dict) -> int:
    if application == "ppr":
        return int(params["max_steps"]) + 1
    return int(walk_length) + 1


def flip_payload(engine, batch, delta) -> tuple[dict[str, np.ndarray], bool]:
    """Serialize one epoch flip: batch columns + touched slices (or all).

    Returns ``(payload, full)``.  The normal path ships the
    :class:`~repro.engines.sliced_tables.FrontierDelta`'s touched
    vertices as an :meth:`export_frontier_patch` — O(touched) bytes.  A
    full :meth:`export_frontier_state` snapshot ships only when the warm
    fell back to a full rebuild (writer recovery, engine reset), flagged
    so workers adopt instead of patch.
    """
    payload: dict[str, np.ndarray] = {
        "batch_src": np.ascontiguousarray(batch.src, dtype=np.int64),
        "batch_dst": np.ascontiguousarray(batch.dst, dtype=np.int64),
        "batch_bias": np.ascontiguousarray(batch.bias, dtype=np.float64),
        "batch_insert": np.ascontiguousarray(batch.insert_mask, dtype=bool),
        "batch_timestamp": np.ascontiguousarray(batch.timestamp, dtype=np.int64),
    }
    full = delta is None or delta.full_rebuild or delta.vertex_ids is None
    if full:
        payload.update(engine.export_frontier_state())
    else:
        payload.update(engine.export_frontier_patch(delta.vertex_ids))
    payload[FULL_STATE_KEY] = np.array([1 if full else 0], dtype=np.int64)
    return payload, full


def _publish_blob(blob: bytes) -> tuple[shared_memory.SharedMemory, int]:
    """Write ``blob`` into a fresh shared-memory block (caller unlinks)."""
    block = shared_memory.SharedMemory(create=True, size=max(len(blob), 1))
    block.buf[: len(blob)] = blob
    return block, len(blob)


def _boot_blob(engine, epoch: int) -> bytes:
    state = engine.export_frontier_state()
    state[EPOCH_KEY] = np.array([int(epoch)], dtype=np.int64)
    return pack_arrays(state)


# --------------------------------------------------------------------------- #
# the shard serve pool
# --------------------------------------------------------------------------- #
class ShardServePool:
    """N shard serve processes plus the router-side dispatch machinery.

    Boot exports the graph once into
    :class:`~repro.graph.partition.SharedGraphShards` and the source
    engine's full frontier state into one shared-memory blob; workers
    copy both into private state, so **both exports are unlinked as soon
    as every worker acked ready** — the pool holds no long-lived shared
    memory, which is what makes SIGTERM cleanup (and chaos SIGKILLs)
    leak-free.  Respawn repeats the boot export from the *current*
    snapshot engine for the dead shards only — O(world) on a crash,
    never on the serving path.

    Ownership is pinned at boot: the partition decided here keeps
    routing deterministic for the pool's lifetime (vertices added later
    route ``v % num_shards``).  Workers treat their owned set as
    advisory — every worker holds the full topology and the full adopted
    tables, so any worker *can* serve any walk; pinning is what makes
    the seed-key scheme reproducible across respawns.
    """

    def __init__(
        self,
        *,
        engine_name: str,
        engine_kwargs: dict | None,
        engine_seed: int,
        graph,
        num_shards: int,
        strategy: str,
        source_engine,
        epoch: int,
        start_method: str | None = None,
    ) -> None:
        check_positive_int(num_shards, "num_shards")
        self.engine_name = engine_name
        self.engine_kwargs = dict(engine_kwargs or {})
        self.engine_seed = int(engine_seed)
        self.num_shards = int(num_shards)
        self.strategy = strategy
        self._closed = False
        self._run_counter = 0
        self._generation = 0
        #: Dead workers replaced by :meth:`respawn` so far.
        self.respawns = 0
        #: Replies discarded (and re-asked) for carrying a stale epoch tag.
        self.stale_replies = 0
        self.build_seconds = [0.0] * self.num_shards

        partition = partition_graph(graph, self.num_shards, strategy=strategy)
        self._owner = partition.owner_for(graph.num_vertices)
        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        context = mp.get_context(start_method)
        self._context = context
        self._inboxes = [context.Queue() for _ in range(self.num_shards)]
        self._reply_readers: list = [None] * self.num_shards
        self._workers: list = [None] * self.num_shards

        store = SharedGraphShards.create(graph, partition)
        block, nbytes = _publish_blob(_boot_blob(source_engine, epoch))
        try:
            handle = store.handle()
            for shard in range(self.num_shards):
                self._spawn(shard, handle, block.name, nbytes)
            self._await_ready(self.num_shards)
        except BaseException:
            self.close()
            raise
        finally:
            # Workers copied everything private; release both exports now.
            store.close()
            block.close()
            block.unlink()

    # ------------------------------------------------------------------ #
    # pool management
    # ------------------------------------------------------------------ #
    def _spawn(self, shard: int, handle, boot_name: str, boot_nbytes: int) -> None:
        reader, writer = self._context.Pipe(duplex=False)
        self._reply_readers[shard] = reader
        process = self._context.Process(
            target=shard_serve_main,
            args=(
                shard,
                self.num_shards,
                self.engine_name,
                self.engine_kwargs,
                self.engine_seed,
                handle,
                boot_name,
                boot_nbytes,
                self._generation,
                self._inboxes[shard],
                writer,
            ),
            daemon=True,
        )
        process.start()
        # The child now holds the only write end: its death — however
        # abrupt — surfaces as EOF on our reader.
        writer.close()
        self._workers[shard] = process

    def _await_ready(self, count: int) -> None:
        remaining = count
        while remaining > 0:
            _, reply = wait_worker_reply(self._reply_readers, self._workers)
            kind = reply[0]
            if kind == "error":
                self.close()
                raise ParallelExecutionError(
                    f"shard serve worker {reply[1]} failed during boot:\n{reply[2]}"
                )
            if kind != "ready" or reply[2] != self._generation:
                continue  # straggler from a superseded boot or aborted run
            self.build_seconds[reply[1]] = float(reply[3])
            remaining -= 1

    def respawn(self, source_engine, epoch: int) -> list[int]:
        """Replace crashed workers, booted from the current snapshot.

        Unlike the walk runner's respawn (which re-attaches a still-live
        shared export), the serve pool holds no export to re-attach — it
        re-exports the *current* graph and frontier state, so the fresh
        worker boots already at ``epoch`` and needs no flip replay.
        Returns the list of replaced shards (empty if all alive).
        """
        self._require_open()
        dead = [
            shard
            for shard, process in enumerate(self._workers)
            if not process.is_alive()
        ]
        if not dead:
            return []
        # Bump the run counter so straggler walk replies the crashed run
        # already enqueued are discarded as stale.
        self._run_counter += 1
        self._generation += 1
        partition = partition_graph(
            source_engine.graph, self.num_shards, strategy=self.strategy
        )
        store = SharedGraphShards.create(source_engine.graph, partition)
        block, nbytes = _publish_blob(_boot_blob(source_engine, epoch))
        try:
            handle = store.handle()
            for shard in dead:
                old_inbox = self._inboxes[shard]
                old_reader = self._reply_readers[shard]
                self._inboxes[shard] = self._context.Queue()
                self._spawn(shard, handle, block.name, nbytes)
                for stale in (old_inbox, old_reader):
                    try:
                        stale.close()
                    except Exception:  # pragma: no cover - channel broken
                        pass
            self._await_ready(len(dead))
        finally:
            store.close()
            block.close()
            block.unlink()
        self.respawns += len(dead)
        return dead

    def kill_worker(self, shard: int) -> None:
        """SIGKILL one shard serve process (the chaos primitive)."""
        victim = self._workers[shard % self.num_shards]
        victim.kill()
        victim.join(timeout=5)

    def worker_pids(self) -> list[int | None]:
        return [process.pid for process in self._workers]

    def alive(self) -> list[bool]:
        return [
            process is not None and process.is_alive() for process in self._workers
        ]

    def close(self) -> None:
        """Stop every worker.  No shared memory outlives the pool."""
        if self._closed:
            return
        self._closed = True
        for inbox in self._inboxes:
            try:
                inbox.put(("stop",))
            except Exception:  # pragma: no cover - queue already broken
                pass
        for process in self._workers:
            if process is None:
                continue
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5)
        for reader in self._reply_readers:
            try:
                reader.close()
            except Exception:  # pragma: no cover - already closed
                pass

    def _require_open(self) -> None:
        if self._closed:
            raise ServeError("the shard serve pool has been closed")

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def owners_of(self, vertices: np.ndarray) -> np.ndarray:
        """The pinned owner shard of every vertex (new vertices mod N)."""
        vertices = np.asarray(vertices, dtype=np.int64)
        if self.num_shards == 1:
            return np.zeros(len(vertices), dtype=np.int64)
        limit = len(self._owner)
        if limit == 0:
            return np.abs(vertices) % self.num_shards
        owners = self._owner[np.clip(vertices, 0, limit - 1)]
        outside = (vertices < 0) | (vertices >= limit)
        if outside.any():
            owners = np.where(outside, np.abs(vertices) % self.num_shards, owners)
        return owners

    def run(
        self,
        application: str,
        starts: np.ndarray,
        walk_length: int,
        params: dict,
        seed_key: Sequence[int],
        epoch: int,
    ) -> tuple[np.ndarray, list[float]]:
        """Fan one fused group out and reassemble the replies.

        Raises :class:`~repro.errors.WorkerCrashError` when a shard dies
        mid-run (the caller respawns and retries once — the seed keys
        make the retry bitwise-deterministic).  A reply tagged with a
        stale epoch is discarded and the shard re-asked once; snapshot
        isolation never mixes epochs in one response.
        """
        self._require_open()
        self._run_counter += 1
        run_id = self._run_counter
        owners = self.owners_of(starts)
        pending: dict[int, tuple[np.ndarray, tuple]] = {}
        for shard in range(self.num_shards):
            positions = np.flatnonzero(owners == shard)
            if len(positions) == 0:
                continue
            key = (
                tuple(seed_key)
                if self.num_shards == 1
                else tuple(seed_key) + (shard,)
            )
            message = (
                "walk",
                run_id,
                application,
                starts[positions],
                int(walk_length),
                dict(params),
                key,
            )
            self._inboxes[shard].put(message)
            pending[shard] = (positions, message)
        parts: list[tuple[np.ndarray, np.ndarray]] = []
        busy = [0.0] * self.num_shards
        retried: set = set()
        while pending:
            _, reply = wait_worker_reply(self._reply_readers, self._workers)
            kind = reply[0]
            if kind == "error":
                self.close()
                raise ParallelExecutionError(
                    f"shard serve worker {reply[1]} failed:\n{reply[2]}"
                )
            if kind != "walks":
                continue  # straggler flip ack from an aborted collection
            _, shard, reply_run, reply_epoch, matrix, walk_busy = reply
            if reply_run != run_id or shard not in pending:
                continue  # straggler from a run a crash aborted
            if reply_epoch != epoch:
                # The worker answered against another snapshot.  Discard
                # and re-ask once — its inbox is FIFO, so the re-ask runs
                # after whatever flip produced the skew.
                self.stale_replies += 1
                if shard in retried:
                    self.close()
                    raise ParallelExecutionError(
                        f"shard {shard} repeatedly answered epoch "
                        f"{reply_epoch} for a query dispatched at epoch {epoch}"
                    )
                retried.add(shard)
                self._inboxes[shard].put(pending[shard][1])
                continue
            busy[shard] += float(walk_busy)
            parts.append((pending.pop(shard)[0], matrix))
        fallback = _fallback_width(application, walk_length, params)
        return reassemble(len(starts), parts, fallback_width=fallback), busy

    def flip(
        self, epoch: int, blob: bytes, source_engine
    ) -> tuple[list[float], int]:
        """Broadcast one epoch flip and collect every shard's ack.

        The payload travels as one shared-memory block, unlinked as soon
        as all shards acked.  A worker that dies mid-flip is respawned
        from ``source_engine`` (which already carries the post-flip
        state), booting directly at ``epoch`` — so the flip completes for
        every shard either by patch or by rebirth.
        """
        self._require_open()
        block, nbytes = _publish_blob(blob)
        try:
            awaiting = set(range(self.num_shards))
            for inbox in self._inboxes:
                inbox.put(("flip", int(epoch), block.name, nbytes))
            busy = [0.0] * self.num_shards
            respawned_total = 0
            while awaiting:
                try:
                    _, reply = wait_worker_reply(
                        self._reply_readers, self._workers
                    )
                except WorkerCrashError:
                    fresh = self.respawn(source_engine, epoch)
                    respawned_total += len(fresh)
                    awaiting.difference_update(fresh)
                    continue
                kind = reply[0]
                if kind == "error":
                    self.close()
                    raise ParallelExecutionError(
                        f"shard serve worker {reply[1]} failed during an "
                        f"epoch flip:\n{reply[2]}"
                    )
                if kind != "flipped":
                    continue  # straggler walk reply from an aborted run
                _, shard, reply_epoch, flip_busy = reply
                if reply_epoch != epoch or shard not in awaiting:
                    continue
                busy[shard] += float(flip_busy)
                awaiting.discard(shard)
            return busy, respawned_total
        finally:
            block.close()
            block.unlink()


# --------------------------------------------------------------------------- #
# the router service
# --------------------------------------------------------------------------- #
class RouterService(GraphService):
    """The sharded serve front: GraphService semantics, multi-process execution.

    Construction keeps the single-process double-buffered writer (the
    back/front engine pair *is* the router's reference copy and the
    source of every flip payload) and adds a :class:`ShardServePool`
    booted from the front engine's exported state at epoch 0.  The
    public API is exactly :class:`GraphService`'s — ``from_config``,
    ``submit``/``query``, ``ingest``/``flush``, ``stats_snapshot``,
    ``close`` — so every HTTP front-end (threaded and event-loop) serves
    a router without knowing it.

    Overridden hooks:

    * :meth:`_group_rng` hands out :class:`ShardStreamKey` seed keys
      instead of live generators (a caller-supplied live generator falls
      back to in-process execution on the front snapshot);
    * :meth:`_execute_walks` fans the fused group out under
      ``_pool_lock`` — the same lock the flip broadcast holds, so a
      response never mixes epochs;
    * :meth:`_warm_engine` captures the
      :class:`~repro.engines.sliced_tables.FrontierDelta` of each
      delta-warm so :meth:`_publish` can serialize exactly the touched
      slices;
    * :meth:`_publish` broadcasts the flip to every shard *before*
      committing the epoch swap, keeping workers and the front snapshot
      in lockstep.
    """

    def __init__(
        self,
        engine_name: str,
        graph,
        *,
        shards: int = 2,
        rng=2025,
        engine_kwargs: dict | None = None,
        partition_strategy: str = "degree_balanced",
        max_pending_queries: int = 64,
        fuse_limit: int = 8,
        fuse_window_seconds: float = 0.002,
        service_seed: int = 0,
        tenants=None,
        default_quota=None,
        strict_tenants: bool = False,
        fault_injector=None,
        dead_letter_limit: int = 16,
        writer_recovery_limit: int = 3,
        start_method: str | None = None,
    ) -> None:
        check_positive_int(shards, "shards")
        engine_cls = ENGINE_REGISTRY.get(engine_name)
        if engine_cls is not None and not hasattr(
            engine_cls, "export_frontier_state"
        ):
            raise ServeError(
                f"engine {engine_name!r} has no serializable frontier state; "
                "the shard router needs one of the sliced-table engines "
                "(bingo / knightking / gsampler)"
            )
        self.shards = int(shards)
        # Attributes the overridden hooks touch must exist before the
        # base constructor runs (it warms both buffers through
        # _warm_engine and could in principle publish).
        self._pool: ShardServePool | None = None
        self._pool_lock = threading.Lock()
        self._pending_delta = None
        self._walk_busy = [0.0] * self.shards
        self._flip_busy = [0.0] * self.shards
        self._walk_critical_seconds = 0.0
        self._flip_critical_seconds = 0.0
        self._shard_flips = 0
        self._full_snapshot_flips = 0
        self._flip_payload_bytes = 0
        super().__init__(
            engine_name,
            graph,
            rng=rng,
            engine_kwargs=engine_kwargs,
            workers=1,
            partition_strategy=partition_strategy,
            sync=False,
            max_pending_queries=max_pending_queries,
            fuse_limit=fuse_limit,
            fuse_window_seconds=fuse_window_seconds,
            service_seed=service_seed,
            tenants=tenants,
            default_quota=default_quota,
            strict_tenants=strict_tenants,
            warm_on_publish=True,
            fault_injector=fault_injector,
            dead_letter_limit=dead_letter_limit,
            writer_recovery_limit=writer_recovery_limit,
        )
        # The construction warms were cold full builds, not flip deltas.
        self._pending_delta = None
        try:
            self._pool = ShardServePool(
                engine_name=engine_name,
                engine_kwargs=self._engine_kwargs,
                engine_seed=int(rng),
                graph=self.engine.graph,
                num_shards=self.shards,
                strategy=partition_strategy,
                source_engine=self.engine,
                epoch=0,
                start_method=start_method,
            )
        except BaseException:
            super().close(drain=False)
            raise

    # ------------------------------------------------------------------ #
    @classmethod
    def from_config(
        cls, config, graph, *, fault_injector=None, rng=None, default_quota=None
    ):
        """Build the router from one frozen :class:`ServiceConfig`."""
        return cls(
            config.engine,
            graph,
            shards=config.shards,
            rng=config.seed if rng is None else rng,
            engine_kwargs=config.engine_kwargs,
            partition_strategy=config.partition_strategy,
            max_pending_queries=config.max_pending_queries,
            fuse_limit=config.fuse_limit,
            fuse_window_seconds=config.fuse_window_seconds,
            service_seed=config.service_seed,
            tenants=config.tenant_quotas(),
            default_quota=default_quota,
            strict_tenants=config.strict_tenants,
            fault_injector=fault_injector,
            dead_letter_limit=config.dead_letter_limit,
            writer_recovery_limit=config.writer_recovery_limit,
        )

    # ------------------------------------------------------------------ #
    # overridden execution hooks
    # ------------------------------------------------------------------ #
    def _group_rng(self, tickets):
        if len(tickets) == 1 and tickets[0].query.rng is not None:
            caller = tickets[0].query.rng
            if isinstance(caller, bool) or not isinstance(
                caller, (int, np.integer)
            ):
                # A live generator cannot cross the process boundary by
                # reference; preserve its bitwise contract by executing
                # in-process on the front snapshot instead.
                return caller
            return ShardStreamKey((int(caller),))
        with self._cond:
            stream = self._group_counter
            self._group_counter += 1
        return ShardStreamKey((self.service_seed, stream))

    def _execute_walks(self, query, params, starts, rng):
        if not isinstance(rng, ShardStreamKey):
            return super()._execute_walks(query, params, starts, rng)
        starts_array = np.asarray(starts, dtype=np.int64)
        with self._pool_lock:
            epoch = self._epoch
            busy_start = time.thread_time()
            if self._faults is not None:
                action = self._faults.fire("router.dispatch")
                if action is not None and action.kind == "kill_worker":
                    self._pool.kill_worker(action.worker)
            try:
                matrix, shard_busy = self._pool.run(
                    query.application,
                    starts_array,
                    query.walk_length,
                    params,
                    tuple(rng),
                    epoch,
                )
            except WorkerCrashError:
                # A shard died mid-fan-out.  Respawn it from the current
                # front snapshot (same epoch — flips are excluded while
                # we hold the pool lock) and retry ONCE; a second crash
                # fails the tickets with the typed error — resolved
                # either way, never hung.
                respawned = self._pool.respawn(self.engine, epoch)
                with self._cond:
                    self.stats.worker_respawns += len(respawned)
                    self.stats.wave_retries += 1
                matrix, shard_busy = self._pool.run(
                    query.application,
                    starts_array,
                    query.walk_length,
                    params,
                    tuple(rng),
                    epoch,
                )
            for shard, seconds in enumerate(shard_busy):
                self._walk_busy[shard] += seconds
            self._walk_critical_seconds += max(shard_busy, default=0.0)
            busy = (time.thread_time() - busy_start) + max(shard_busy, default=0.0)
        return BatchedWalks(matrix=matrix), epoch, busy

    def _warm_engine(self, engine):
        delta = super()._warm_engine(engine)
        self._pending_delta = delta
        return delta

    def _publish(self, buffer, batch, started) -> None:
        if self._pool is None:
            # Construction-time publishes (none expected) fall through.
            self._commit_publish(
                buffer, batch, time.thread_time() - started, 0.0
            )
            return
        delta = self._pending_delta
        self._pending_delta = None
        with self._pool_lock:
            flip_start = time.thread_time()
            # The writer is the only epoch bumper, so the post-commit
            # epoch is known before the commit: broadcast first, commit
            # after, and queries (excluded by the pool lock) can never
            # observe a front snapshot ahead of or behind the shards.
            new_epoch = self._epoch + 1
            payload, full = flip_payload(buffer.engine, batch, delta)
            blob = pack_arrays(payload)
            shard_busy, respawned = self._pool.flip(new_epoch, blob, buffer.engine)
            for shard, seconds in enumerate(shard_busy):
                self._flip_busy[shard] += seconds
            self._flip_critical_seconds += max(shard_busy, default=0.0)
            self._shard_flips += 1
            self._full_snapshot_flips += 1 if full else 0
            self._flip_payload_bytes += len(blob)
            if respawned:
                with self._cond:
                    self.stats.worker_respawns += respawned
            self._commit_publish(
                buffer,
                batch,
                time.thread_time() - started,
                time.thread_time() - flip_start,
            )

    # ------------------------------------------------------------------ #
    # reporting / lifecycle
    # ------------------------------------------------------------------ #
    def stats_snapshot(self) -> dict[str, object]:
        snapshot = super().stats_snapshot()
        with self._pool_lock:
            pool = self._pool
            snapshot["shards"] = self.shards
            snapshot["shard_walk_busy_seconds"] = list(self._walk_busy)
            snapshot["shard_flip_busy_seconds"] = list(self._flip_busy)
            snapshot["walk_critical_path_seconds"] = self._walk_critical_seconds
            snapshot["flip_critical_path_seconds"] = self._flip_critical_seconds
            snapshot["shard_flips"] = self._shard_flips
            snapshot["flip_full_snapshots"] = self._full_snapshot_flips
            snapshot["flip_payload_bytes"] = self._flip_payload_bytes
            if pool is not None:
                snapshot["shard_respawns"] = pool.respawns
                snapshot["stale_shard_replies"] = pool.stale_replies
                snapshot["shard_pids"] = pool.worker_pids()
                snapshot["shards_alive"] = pool.alive()
                snapshot["shard_build_seconds"] = list(pool.build_seconds)
        return snapshot

    def close(self, *, drain: bool = True, timeout: float = 60.0) -> None:
        try:
            super().close(drain=drain, timeout=timeout)
        finally:
            with self._pool_lock:
                if self._pool is not None:
                    self._pool.close()


def service_from_config(
    config, graph, *, fault_injector=None, rng=None, default_quota=None
):
    """The service a :class:`ServiceConfig` describes — sharded or not.

    ``shards > 1`` builds a :class:`RouterService`; otherwise the
    single-process :class:`GraphService`.  This is what the CLI and the
    HTTP entry points call, so ``--shards`` is one flag, not a different
    program.
    """
    if config.shards > 1:
        return RouterService.from_config(
            config,
            graph,
            fault_injector=fault_injector,
            rng=rng,
            default_quota=default_quota,
        )
    return GraphService.from_config(
        config,
        graph,
        fault_injector=fault_injector,
        rng=rng,
        default_quota=default_quota,
    )


__all__ = [
    "RouterService",
    "ShardServePool",
    "ShardStreamKey",
    "discard_stale",
    "flip_payload",
    "reassemble",
    "reference_shard_walks",
    "service_from_config",
]
