"""Shard serve worker: one process serving whole walks over a shard engine.

This is the execution half of the scale-out serve path
(:mod:`repro.serve.router` owns the other half).  Each worker process:

* attaches the PR 3 shared-memory CSR export once at boot, materializes a
  *local mutable* :class:`~repro.graph.dynamic_graph.DynamicGraph` from
  it, and builds its engine via ``for_shard`` (samplers for owned
  vertices only — the per-shard memory story);
* adopts the router writer's serialized *global* fused-table snapshot
  (:meth:`export_frontier_state`), so the engine can execute **whole
  walks** — every hop table-driven against the adopted slices, no
  per-step hand-off chatter between processes;
* flips epochs by applying the writer's O(touched) patch
  (:meth:`apply_frontier_patch`) plus the update batch's columns to its
  local graph — the batch and the touched slices travel in one
  shared-memory block, so a flip never re-pickles the world.

The message protocol mirrors :mod:`repro.walks.parallel`'s discipline:
a per-worker inbox queue, a private reply pipe (a crash corrupts at most
the dead worker's own channel), run ids so stragglers from an aborted
run are discarded, and epoch tags so the router can detect stale
replies.  Because queries and flips ride the *same* FIFO inbox, a
worker's reply epoch always matches the epoch the router dispatched
against — unless the worker was respawned mid-query, which the router
resolves with one retry.
"""

from __future__ import annotations

import time
import traceback
from multiprocessing import shared_memory

import numpy as np

from repro.engines.sliced_tables import unpack_arrays
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.partition import SharedGraphShards, SharedShardHandle
from repro.graph.update_batch import UpdateBatch
from repro.walks.frontier import (
    run_frontier_deepwalk,
    run_frontier_node2vec,
    run_frontier_ppr,
)

#: Key carrying the epoch number inside boot / flip payload blobs.
EPOCH_KEY = "__epoch"

#: Key flagging a flip payload as a full snapshot (writer recovery) vs an
#: O(touched) slice patch (the normal path).
FULL_STATE_KEY = "__full_state"

#: Keys carrying the flip's update-batch columns.
BATCH_KEYS = ("batch_src", "batch_dst", "batch_bias", "batch_insert", "batch_timestamp")


def materialize_local_graph(view) -> DynamicGraph:
    """Copy a shared CSR view into a private mutable :class:`DynamicGraph`.

    Workers pay this O(V + E) copy once at boot (and once per respawn) so
    every later flip mutates private adjacency in place — the shared
    export can be unlinked as soon as the pool is ready.
    """
    graph = DynamicGraph(view.num_vertices)
    for vertex in range(view.num_vertices):
        neighbors = view.neighbor_array(vertex)
        if len(neighbors):
            graph.add_edges_bulk(
                vertex, np.array(neighbors), np.array(view.bias_array(vertex))
            )
    return graph


def read_shared_blob(name: str, nbytes: int) -> bytes:
    """Copy ``nbytes`` out of the named shared-memory block and detach."""
    block = shared_memory.SharedMemory(name=name)
    try:
        return bytes(block.buf[:nbytes])
    finally:
        block.close()


def batch_from_payload(payload) -> UpdateBatch:
    """Rebuild the flip's :class:`UpdateBatch` from its array columns."""
    return UpdateBatch(
        payload["batch_src"],
        payload["batch_dst"],
        payload["batch_bias"],
        payload["batch_insert"],
        payload["batch_timestamp"],
    )


def execute_walk(engine, application, starts, walk_length, params, rng):
    """Run one whole-walk group on a shard engine (the router's work unit)."""
    if application == "deepwalk":
        return run_frontier_deepwalk(engine, starts, walk_length, rng=rng)
    if application == "ppr":
        return run_frontier_ppr(
            engine,
            starts,
            termination_probability=params["termination_probability"],
            max_steps=int(params["max_steps"]),
            rng=rng,
        )
    return run_frontier_node2vec(
        engine, starts, walk_length, p=params["p"], q=params["q"], rng=rng
    )


def shard_serve_main(
    shard: int,
    num_shards: int,
    engine_name: str,
    engine_kwargs: dict,
    engine_seed: int,
    handle: SharedShardHandle,
    boot_name: str,
    boot_nbytes: int,
    generation: int,
    inbox,
    replies,
) -> None:
    """Worker loop: boot from shared memory, then serve walks and flips.

    ``generation`` is the router's respawn counter at spawn time; the
    ``ready`` reply echoes it so the router can discard stale readies
    from a boot a crash aborted (the :mod:`repro.walks.parallel` idiom).
    """
    # Imported here so "spawn" children resolve the registry cleanly.
    from repro.engines.registry import ENGINE_REGISTRY

    store: SharedGraphShards | None = None
    try:
        build_start = time.process_time()
        store = SharedGraphShards.attach(handle)
        view = store.shard_view(shard)
        graph = materialize_local_graph(view)
        owned = np.array(view.owned_vertices(), dtype=np.int64)
        store.close()
        store = None
        engine = ENGINE_REGISTRY[engine_name].for_shard(
            graph, owned, rng=engine_seed, **engine_kwargs
        )
        boot_state = unpack_arrays(read_shared_blob(boot_name, boot_nbytes))
        epoch = int(boot_state[EPOCH_KEY][0])
        engine.adopt_frontier_state(boot_state)
        replies.send(("ready", shard, generation, time.process_time() - build_start))

        while True:
            message = inbox.get()
            command = message[0]
            try:
                if command == "stop":
                    break
                if command == "walk":
                    _, run_id, application, starts, walk_length, params, seed_key = (
                        message
                    )
                    busy_start = time.process_time()
                    rng = np.random.default_rng(list(seed_key))
                    walks = execute_walk(
                        engine, application, starts, walk_length, params, rng
                    )
                    busy = time.process_time() - busy_start
                    replies.send(
                        ("walks", shard, run_id, epoch, walks.matrix, busy)
                    )
                elif command == "flip":
                    _, new_epoch, blob_name, blob_nbytes = message
                    busy_start = time.process_time()
                    payload = unpack_arrays(read_shared_blob(blob_name, blob_nbytes))
                    batch = batch_from_payload(payload)
                    if len(batch):
                        engine._apply_batch_to_graph(batch)
                    if int(payload[FULL_STATE_KEY][0]):
                        engine.adopt_frontier_state(payload)
                    else:
                        engine.apply_frontier_patch(payload)
                    epoch = int(new_epoch)
                    replies.send(
                        ("flipped", shard, epoch, time.process_time() - busy_start)
                    )
                else:  # pragma: no cover - protocol error
                    raise RuntimeError(f"unknown shard-serve command {command!r}")
            except Exception:  # propagate worker failures to the router
                replies.send(("error", shard, traceback.format_exc()))
    except Exception:  # pragma: no cover - startup failure
        try:
            replies.send(("error", shard, traceback.format_exc()))
        except Exception:
            pass
    finally:
        if store is not None:
            store.close()


__all__ = [
    "BATCH_KEYS",
    "EPOCH_KEY",
    "FULL_STATE_KEY",
    "batch_from_payload",
    "execute_walk",
    "materialize_local_graph",
    "read_shared_blob",
    "shard_serve_main",
]
