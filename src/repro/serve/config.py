"""One validated configuration object for the whole serve stack.

Before this module, the service's knobs were spread over four surfaces
that had to agree by convention: :class:`~repro.serve.service.GraphService`
kwargs, ``serve_http(...)`` kwargs, ``serve_event_loop(...)`` kwargs, and
the ``bingo-repro serve`` CLI flags.  :class:`ServiceConfig` subsumes all
of them: the CLI (or environment) constructs one frozen, validated object
and every layer — service, shard router, both HTTP front-ends — reads the
fields it cares about.  The old per-call kwargs still work as thin
deprecation shims that build a config internally.

Environment overrides use the ``BINGO_SERVE_`` prefix, e.g.
``BINGO_SERVE_SHARDS=4`` or ``BINGO_SERVE_EVENT_LOOP=1`` —
:meth:`ServiceConfig.from_env` applies them on top of an existing config,
so precedence is CLI flag > environment > default.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
from dataclasses import dataclass
from collections.abc import Mapping

from repro.errors import ServeError
from repro.serve.tenancy import TenantQuota

#: Environment-variable prefix recognised by :meth:`ServiceConfig.from_env`.
ENV_PREFIX = "BINGO_SERVE_"

#: Default seconds a /v1/query waits on its ticket before answering 504.
DEFAULT_QUERY_TIMEOUT = 30.0

#: Default seconds a request body may dribble in before the read fails.
DEFAULT_BODY_TIMEOUT = 10.0

#: Default ``Retry-After`` hint (seconds) sent with 429 / 503 / 504.
DEFAULT_RETRY_AFTER_SECONDS = 1.0

#: Largest accepted request body (matches ``protocol.MAX_BODY_BYTES``).
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024


@dataclass(frozen=True)
class ServiceConfig:
    """Frozen, validated configuration for a Bingo serve deployment.

    Service-side fields feed :meth:`GraphService.from_config` (or
    :meth:`RouterService.from_config` when ``shards > 1``); transport
    fields feed ``serve_http`` / ``serve_event_loop``; the CLI builds the
    whole object from flags via :meth:`from_cli_args`.
    """

    # -- engine / execution ------------------------------------------- #
    engine: str = "bingo"
    seed: int = 2025
    workers: int = 1
    #: Number of shard serve *processes* behind the router.  1 keeps the
    #: single-process :class:`GraphService`; >1 builds a
    #: :class:`~repro.serve.router.RouterService` front.
    shards: int = 1
    partition_strategy: str = "degree_balanced"
    sync: bool = False
    engine_kwargs: Mapping[str, object] | None = None

    # -- dispatcher / admission --------------------------------------- #
    max_pending_queries: int = 64
    fuse_limit: int = 8
    fuse_window_seconds: float = 0.002
    service_seed: int = 0
    strict_tenants: bool = False
    warm_on_publish: bool = True
    dead_letter_limit: int = 16
    writer_recovery_limit: int = 3
    #: ``(name, weight, max_pending)`` triples; kept as a tuple so the
    #: config stays hashable/frozen.  ``tenant_quotas()`` materialises the
    #: mapping the service wants.
    tenants: tuple[tuple[str, float, int], ...] = ()

    # -- transport ----------------------------------------------------- #
    host: str = "127.0.0.1"
    port: int = 0
    event_loop: bool = False
    query_timeout: float | None = DEFAULT_QUERY_TIMEOUT
    body_timeout: float | None = DEFAULT_BODY_TIMEOUT
    retry_after_seconds: float = DEFAULT_RETRY_AFTER_SECONDS
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    log_requests: bool = False

    def __post_init__(self) -> None:
        for name in ("workers", "shards", "max_pending_queries", "fuse_limit",
                     "dead_letter_limit", "max_body_bytes"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ServeError(f"{name} must be a positive integer, got {value!r}")
        if self.writer_recovery_limit < 0:
            raise ServeError("writer_recovery_limit must be non-negative")
        if self.fuse_window_seconds < 0:
            raise ServeError("fuse_window_seconds must be non-negative")
        if self.retry_after_seconds <= 0:
            raise ServeError("retry_after_seconds must be positive")
        for timeout_name in ("query_timeout", "body_timeout"):
            value = getattr(self, timeout_name)
            if value is not None and value <= 0:
                raise ServeError(f"{timeout_name} must be positive or None")
        if not 0 <= self.port <= 65535:
            raise ServeError(f"port must lie in [0, 65535], got {self.port}")
        if self.shards > 1 and self.workers > 1:
            raise ServeError(
                "workers>1 (in-process shard pool) and shards>1 (shard serve "
                "processes) are mutually exclusive; pick one scale-out axis"
            )
        for spec in self.tenants:
            if len(spec) != 3:
                raise ServeError(f"tenant spec must be (name, weight, max_pending), got {spec!r}")
            name, weight, max_pending = spec
            if not name or weight <= 0 or max_pending < 1:
                raise ServeError(f"invalid tenant spec {spec!r}")
        # Normalise engine_kwargs into a plain immutable-by-convention dict.
        if self.engine_kwargs is not None and not isinstance(self.engine_kwargs, dict):
            object.__setattr__(self, "engine_kwargs", dict(self.engine_kwargs))

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #
    def tenant_quotas(self) -> Mapping[str, TenantQuota] | None:
        """The ``tenants`` triples as the quota mapping the service wants."""
        if not self.tenants:
            return None
        return {
            name: TenantQuota(max_pending=int(max_pending), weight=float(weight))
            for name, weight, max_pending in self.tenants
        }

    def replace(self, **changes: object) -> ServiceConfig:
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_env(
        cls, base: ServiceConfig | None = None, environ: Mapping[str, str] | None = None
    ) -> ServiceConfig:
        """Overlay ``BINGO_SERVE_*`` environment variables on ``base``.

        Recognised names are the upper-cased field names
        (``BINGO_SERVE_SHARDS``, ``BINGO_SERVE_EVENT_LOOP``, ...); booleans
        accept ``1/0/true/false/yes/no``.  Unknown ``BINGO_SERVE_`` names
        raise so a typo cannot silently fall back to defaults.
        """
        base = base if base is not None else cls()
        environ = os.environ if environ is None else environ
        fields = {f.name: f for f in dataclasses.fields(cls)}
        changes: dict[str, object] = {}
        for key, raw in environ.items():
            if not key.startswith(ENV_PREFIX):
                continue
            name = key[len(ENV_PREFIX):].lower()
            field = fields.get(name)
            if field is None or name in ("tenants", "engine_kwargs"):
                raise ServeError(f"unknown serve environment override {key}")
            changes[name] = _parse_env_value(key, raw, getattr(base, name))
        return base.replace(**changes) if changes else base

    @classmethod
    def from_cli_args(cls, args: argparse.Namespace) -> ServiceConfig:
        """Build the config from the ``bingo-repro serve`` argparse namespace."""
        tenants = tuple(
            _parse_tenant_spec(spec) for spec in (getattr(args, "tenant", None) or ())
        )
        base = cls(
            engine=args.engine,
            seed=args.seed,
            workers=args.workers,
            shards=getattr(args, "shards", 1),
            host=args.host,
            port=args.port,
            fuse_limit=args.fuse_limit,
            fuse_window_seconds=args.fuse_window,
            warm_on_publish=not args.no_warm,
            event_loop=bool(getattr(args, "event_loop", False)),
            log_requests=bool(getattr(args, "log_requests", False)),
            max_pending_queries=args.max_pending,
            tenants=tenants,
        )
        return cls.from_env(base)


#: Sentinel marking "kwarg not supplied" in the deprecation shims, so the
#: front-ends can tell an explicit legacy kwarg from its default.
UNSET = object()


def resolve_transport_kwargs(
    config: ServiceConfig | None,
    caller: str,
    **overrides: tuple[object, object],
) -> dict[str, object]:
    """Resolve the front-end deprecation shims against a config.

    Each keyword maps to ``(value, legacy_default)`` where ``value`` is the
    possibly-:data:`UNSET` kwarg the caller received.  Precedence:
    explicit legacy kwarg > ``config`` field > legacy default.  Supplying
    a legacy kwarg emits a :class:`DeprecationWarning` pointing at
    :class:`ServiceConfig` — the kwargs keep working, they are just no
    longer the canonical spelling.
    """
    import warnings

    resolved: dict[str, object] = {}
    legacy: list[str] = []
    for name, (value, default) in overrides.items():
        if value is not UNSET:
            resolved[name] = value
            legacy.append(name)
        elif config is not None:
            resolved[name] = getattr(config, name)
        else:
            resolved[name] = default
    if legacy:
        warnings.warn(
            f"{caller}({', '.join(sorted(legacy))}=...) kwargs are deprecated; "
            "construct a repro.serve.config.ServiceConfig and pass config=...",
            DeprecationWarning,
            stacklevel=3,
        )
    return resolved


def _parse_tenant_spec(spec: str) -> tuple[str, float, int]:
    """``NAME[:WEIGHT[:MAX_PENDING]]`` -> a config tenant triple."""
    parts = str(spec).split(":")
    if not parts[0] or len(parts) > 3:
        raise ServeError(f"malformed tenant spec {spec!r} (want NAME[:WEIGHT[:MAX_PENDING]])")
    try:
        weight = float(parts[1]) if len(parts) > 1 else 1.0
        max_pending = int(parts[2]) if len(parts) > 2 else 64
    except ValueError as exc:
        raise ServeError(f"malformed tenant spec {spec!r}: {exc}") from exc
    return (parts[0], weight, max_pending)


def _parse_env_value(key: str, raw: str, current: object) -> object:
    """Coerce an environment string onto the field's current type."""
    if isinstance(current, bool):
        lowered = raw.strip().lower()
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off"):
            return False
        raise ServeError(f"{key} must be a boolean, got {raw!r}")
    try:
        if isinstance(current, int):
            return int(raw)
        if current is None or isinstance(current, float):
            return float(raw)
    except ValueError as exc:
        raise ServeError(f"{key} must be numeric, got {raw!r}") from exc
    return raw


__all__ = [
    "DEFAULT_BODY_TIMEOUT",
    "DEFAULT_MAX_BODY_BYTES",
    "DEFAULT_QUERY_TIMEOUT",
    "DEFAULT_RETRY_AFTER_SECONDS",
    "ENV_PREFIX",
    "UNSET",
    "ServiceConfig",
    "resolve_transport_kwargs",
]
