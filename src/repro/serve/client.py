"""Stdlib HTTP client for the serve front-end, with capped backoff retries.

The server side (:mod:`repro.serve.http`) marks transient failures with
429 / 503 / 504 and a ``Retry-After`` header; this client closes the loop:
idempotent requests (``/query``, ``/stats``, ``/healthz``) are retried
with capped exponential backoff, sleeping at least the server's
``Retry-After`` hint when one is present.  ``/ingest`` is **never**
retried — replaying an update batch whose first attempt may have been
applied is exactly the duplicate-batch bug the writer's dead-letter
quarantine exists to catch, and the client must not manufacture it.

Walk queries are safe to retry because they are reads: a query resolves
against whatever snapshot is published when it fuses and mutates nothing,
so two attempts are two independent reads, not a double-apply.

Built on :mod:`urllib.request` only — like the server, no dependencies
beyond the standard library.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence

from repro.errors import ServeError
from repro.serve.http import RETRYABLE_STATUSES, TENANT_HEADER

#: Default attempt budget: 1 initial try + this many retries.
DEFAULT_MAX_RETRIES = 4

#: First backoff sleep (seconds); doubles per retry up to the cap.
DEFAULT_BACKOFF_SECONDS = 0.25

#: Ceiling on any single backoff sleep (seconds).
DEFAULT_BACKOFF_CAP_SECONDS = 8.0


class ServiceHTTPError(ServeError):
    """A non-2xx response from the serve front-end.

    Carries the HTTP ``status``, the decoded JSON ``payload`` (or ``{}``
    when the body was not JSON) and the parsed ``retry_after`` hint in
    seconds (``None`` when the server sent no header).
    """

    def __init__(
        self,
        status: int,
        payload: Dict[str, object],
        retry_after: Optional[float] = None,
    ) -> None:
        detail = payload.get("error") or payload.get("status") or ""
        super().__init__(f"serve front-end returned {status}: {detail}")
        self.status = int(status)
        self.payload = payload
        self.retry_after = retry_after


class ServiceUnreachableError(ServeError):
    """The front-end could not be reached (connection or socket failure)."""


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    """The ``Retry-After`` header in seconds (delta-seconds form only)."""
    if value is None:
        return None
    try:
        seconds = float(value)
    except ValueError:
        return None
    return seconds if seconds >= 0 else None


class ServiceClient:
    """A retrying JSON client bound to one serve front-end URL.

    Parameters
    ----------
    base_url:
        The server root, e.g. ``server.url`` from :func:`serve_http`.
    tenant:
        Optional tenant id sent in the ``X-Tenant`` header of every
        request (individual calls may override it).
    max_retries:
        Retries after the first attempt for *idempotent* requests that
        fail transiently (retryable status or unreachable server).
        Non-idempotent requests (``/ingest``) always get exactly one
        attempt regardless.
    backoff_seconds / backoff_cap_seconds:
        Capped exponential schedule: retry *n* sleeps
        ``min(backoff_seconds * 2**n, backoff_cap_seconds)``, raised to
        the server's ``Retry-After`` hint when that is larger.
    timeout:
        Socket timeout per attempt (seconds).
    sleep:
        Injection point for tests (defaults to :func:`time.sleep`).
    """

    def __init__(
        self,
        base_url: str,
        *,
        tenant: Optional[str] = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff_seconds: float = DEFAULT_BACKOFF_SECONDS,
        backoff_cap_seconds: float = DEFAULT_BACKOFF_CAP_SECONDS,
        timeout: float = 30.0,
        sleep=time.sleep,
    ) -> None:
        if max_retries < 0:
            raise ServeError("max_retries must be non-negative")
        if not backoff_seconds > 0 or not backoff_cap_seconds > 0:
            raise ServeError("backoff seconds must be positive")
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.max_retries = int(max_retries)
        self.backoff_seconds = float(backoff_seconds)
        self.backoff_cap_seconds = float(backoff_cap_seconds)
        self.timeout = float(timeout)
        self._sleep = sleep
        #: Transient-failure retries performed over this client's lifetime.
        self.retries_performed = 0

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    def query(
        self,
        application: str,
        starts: Sequence[int],
        walk_length: int,
        *,
        params: Optional[Dict[str, float]] = None,
        timeout: Optional[float] = None,
        deadline_seconds: Optional[float] = None,
        tenant: Optional[str] = None,
    ) -> Dict[str, object]:
        """Run one walk query; retried on transient failures (a read)."""
        body: Dict[str, object] = {
            "application": application,
            "starts": list(starts),
            "walk_length": int(walk_length),
        }
        if params:
            body["params"] = dict(params)
        if timeout is not None:
            body["timeout"] = float(timeout)
        if deadline_seconds is not None:
            body["deadline_seconds"] = float(deadline_seconds)
        return self._request("POST", "/query", body, idempotent=True, tenant=tenant)

    def ingest(
        self,
        updates: List[Dict[str, object]],
        *,
        flush: bool = False,
        tenant: Optional[str] = None,
    ) -> Dict[str, object]:
        """Queue an update batch — **never retried** (not idempotent)."""
        body: Dict[str, object] = {"updates": list(updates)}
        if flush:
            body["flush"] = True
        return self._request("POST", "/ingest", body, idempotent=False, tenant=tenant)

    def stats(self) -> Dict[str, object]:
        return self._request("GET", "/stats", None, idempotent=True)

    def health(self) -> Dict[str, object]:
        """The ``/healthz`` payload; unhealthy (503) is returned, not raised."""
        try:
            return self._request("GET", "/healthz", None, idempotent=False)
        except ServiceHTTPError as exc:
            if exc.status == 503 and exc.payload:
                return exc.payload
            raise

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _backoff(self, attempt: int, hint: Optional[float]) -> float:
        planned = min(
            self.backoff_seconds * (2.0**attempt), self.backoff_cap_seconds
        )
        if hint is not None:
            planned = max(planned, hint)
        return planned

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]],
        *,
        idempotent: bool,
        tenant: Optional[str] = None,
    ) -> Dict[str, object]:
        retries = self.max_retries if idempotent else 0
        attempt = 0
        while True:
            try:
                return self._attempt(method, path, body, tenant)
            except ServiceHTTPError as exc:
                if exc.status not in RETRYABLE_STATUSES or attempt >= retries:
                    raise
                hint = exc.retry_after
            except ServiceUnreachableError:
                if attempt >= retries:
                    raise
                hint = None
            self._sleep(self._backoff(attempt, hint))
            self.retries_performed += 1
            attempt += 1

    def _attempt(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]],
        tenant: Optional[str],
    ) -> Dict[str, object]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        tenant = tenant if tenant is not None else self.tenant
        if tenant:
            headers[TENANT_HEADER] = tenant
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except (json.JSONDecodeError, UnicodeDecodeError):
                payload = {}
            retry_after = _parse_retry_after(exc.headers.get("Retry-After"))
            raise ServiceHTTPError(exc.code, payload, retry_after) from exc
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceUnreachableError(
                f"could not reach {self.base_url}: {exc}"
            ) from exc


__all__ = [
    "DEFAULT_BACKOFF_CAP_SECONDS",
    "DEFAULT_BACKOFF_SECONDS",
    "DEFAULT_MAX_RETRIES",
    "ServiceClient",
    "ServiceHTTPError",
    "ServiceUnreachableError",
]
