"""Stdlib HTTP client for the serve front-end, with capped backoff retries.

The server side (:mod:`repro.serve.http` / :mod:`repro.serve.eventloop`)
marks transient failures with 429 / 503 / 504 and a ``Retry-After``
header; this client closes the loop: idempotent requests (``/v1/query``,
``/v1/stats``, ``/v1/healthz``) are retried with capped exponential
backoff, sleeping at least the server's ``Retry-After`` hint when one is
present.  The client speaks the versioned ``/v1`` routes natively.
``/v1/ingest`` is **never** retried on an HTTP error — replaying an update
batch whose first attempt may have been applied is exactly the
duplicate-batch bug the writer's dead-letter quarantine exists to catch,
and the client must not manufacture it.

Walk queries are safe to retry because they are reads: a query resolves
against whatever snapshot is published when it fuses and mutates nothing,
so two attempts are two independent reads, not a double-apply.

Transport: one persistent keep-alive ``http.client.HTTPConnection`` per
client, reused across requests instead of a fresh TCP handshake each
time (the old ``urllib.request`` transport's per-request connection cost
dominated small queries).  A stale keep-alive socket — the server timed
the idle connection out between requests and ``getresponse`` raises
``RemoteDisconnected`` — is reconnected transparently, once, for *any*
request including ``/ingest``: a server that closed an idle connection
never processed the request riding it, so the resend cannot double-apply.

``query(..., binary=True)`` negotiates the zero-copy
``application/x-walks-bin`` response (:mod:`repro.serve.wire`) and
returns the decoded :class:`~repro.serve.wire.DecodedWalks`, whose
matrix is an ``np.frombuffer`` view over the response bytes — no
per-cell JSON decode on either side of the wire.

Built on the standard library only, like the servers.  A client instance
serializes its requests with an internal lock (one connection, one
in-flight request); use one client per thread for parallel load.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.parse
from collections.abc import Sequence

from repro.errors import ServeError
from repro.serve import wire
from repro.serve.protocol import RETRYABLE_STATUSES, TENANT_HEADER

#: Default attempt budget: 1 initial try + this many retries.
DEFAULT_MAX_RETRIES = 4

#: First backoff sleep (seconds); doubles per retry up to the cap.
DEFAULT_BACKOFF_SECONDS = 0.25

#: Ceiling on any single backoff sleep (seconds).
DEFAULT_BACKOFF_CAP_SECONDS = 8.0

#: Exceptions that mean "the reused keep-alive socket went stale":
#: the server closed the idle connection before (or instead of)
#: answering, so a fresh connection gets one transparent resend.
_STALE_CONNECTION_ERRORS = (
    http.client.RemoteDisconnected,
    http.client.BadStatusLine,
    http.client.CannotSendRequest,
    BrokenPipeError,
    ConnectionResetError,
    ConnectionAbortedError,
)


class ServiceHTTPError(ServeError):
    """A non-2xx response from the serve front-end.

    Carries the HTTP ``status``, the decoded JSON ``payload`` (or ``{}``
    when the body was not JSON) and the parsed ``retry_after`` hint in
    seconds (``None`` when the server sent no header).
    """

    def __init__(
        self,
        status: int,
        payload: dict[str, object],
        retry_after: float | None = None,
    ) -> None:
        envelope = payload.get("error")
        if isinstance(envelope, dict):
            # The canonical /v1 envelope: {"error": {"code", "message", ...}}.
            code = envelope.get("code") or ""
            message = envelope.get("message") or ""
            detail = f"{code}: {message}" if code else message
            self.error_code: str | None = str(code) or None
        else:
            # Pre-/v1 servers sent flat {"error": "...", "type": "..."}.
            detail = envelope or payload.get("status") or ""
            self.error_code = None
        super().__init__(f"serve front-end returned {status}: {detail}")
        self.status = int(status)
        self.payload = payload
        self.retry_after = retry_after


class ServiceUnreachableError(ServeError):
    """The front-end could not be reached (connection or socket failure)."""


def _parse_retry_after(value: str | None) -> float | None:
    """The ``Retry-After`` header in seconds (delta-seconds form only)."""
    if value is None:
        return None
    try:
        seconds = float(value)
    except ValueError:
        return None
    return seconds if seconds >= 0 else None


class ServiceClient:
    """A retrying JSON/binary client bound to one serve front-end URL.

    Parameters
    ----------
    base_url:
        The server root, e.g. ``server.url`` from :func:`serve_http` or
        :func:`~repro.serve.eventloop.serve_event_loop`.
    tenant:
        Optional tenant id sent in the ``X-Tenant`` header of every
        request (individual calls may override it).
    max_retries:
        Retries after the first attempt for *idempotent* requests that
        fail transiently (retryable status or unreachable server).
        Non-idempotent requests (``/ingest``) always get exactly one
        attempt regardless.
    backoff_seconds / backoff_cap_seconds:
        Capped exponential schedule: retry *n* sleeps
        ``min(backoff_seconds * 2**n, backoff_cap_seconds)``, raised to
        the server's ``Retry-After`` hint when that is larger.
    timeout:
        Socket timeout per attempt (seconds).
    sleep:
        Injection point for tests (defaults to :func:`time.sleep`).
    """

    def __init__(
        self,
        base_url: str,
        *,
        tenant: str | None = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff_seconds: float = DEFAULT_BACKOFF_SECONDS,
        backoff_cap_seconds: float = DEFAULT_BACKOFF_CAP_SECONDS,
        timeout: float = 30.0,
        sleep=time.sleep,
    ) -> None:
        if max_retries < 0:
            raise ServeError("max_retries must be non-negative")
        if not backoff_seconds > 0 or not backoff_cap_seconds > 0:
            raise ServeError("backoff seconds must be positive")
        self.base_url = base_url.rstrip("/")
        split = urllib.parse.urlsplit(self.base_url)
        if split.scheme not in ("http", ""):
            raise ServeError(f"unsupported URL scheme {split.scheme!r}")
        self._host = split.hostname or "127.0.0.1"
        self._port = split.port or 80
        self.tenant = tenant
        self.max_retries = int(max_retries)
        self.backoff_seconds = float(backoff_seconds)
        self.backoff_cap_seconds = float(backoff_cap_seconds)
        self.timeout = float(timeout)
        self._sleep = sleep
        self._lock = threading.Lock()
        self._connection: http.client.HTTPConnection | None = None
        #: Transient-failure retries performed over this client's lifetime.
        self.retries_performed = 0
        #: TCP connections opened (1 after any number of keep-alive
        #: requests; +1 per transparent stale-connection reconnect).
        self.connections_opened = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Drop the persistent connection (reopened on the next request)."""
        with self._lock:
            self._drop_connection()

    def __enter__(self) -> ServiceClient:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    def query(
        self,
        application: str,
        starts: Sequence[int],
        walk_length: int,
        *,
        params: dict[str, float] | None = None,
        timeout: float | None = None,
        deadline_seconds: float | None = None,
        tenant: str | None = None,
        binary: bool = False,
    ) -> dict[str, object] | wire.DecodedWalks:
        """Run one walk query; retried on transient failures (a read).

        With ``binary=True`` the request negotiates
        ``Accept: application/x-walks-bin`` and the return value is a
        :class:`~repro.serve.wire.DecodedWalks` (zero-copy matrix view)
        instead of the JSON dict.
        """
        body: dict[str, object] = {
            "application": application,
            "starts": list(starts),
            "walk_length": int(walk_length),
        }
        if params:
            body["params"] = dict(params)
        if timeout is not None:
            body["timeout"] = float(timeout)
        if deadline_seconds is not None:
            body["deadline_seconds"] = float(deadline_seconds)
        return self._request(
            "POST", "/v1/query", body, idempotent=True, tenant=tenant, binary=binary
        )

    def ingest(
        self,
        updates: list[dict[str, object]],
        *,
        flush: bool = False,
        tenant: str | None = None,
    ) -> dict[str, object]:
        """Queue an update batch — **never retried** (not idempotent)."""
        body: dict[str, object] = {"updates": list(updates)}
        if flush:
            body["flush"] = True
        return self._request(
            "POST", "/v1/ingest", body, idempotent=False, tenant=tenant
        )

    def stats(self) -> dict[str, object]:
        return self._request("GET", "/v1/stats", None, idempotent=True)

    def health(self) -> dict[str, object]:
        """The ``/healthz`` payload; unhealthy (503) is returned, not raised."""
        try:
            return self._request("GET", "/v1/healthz", None, idempotent=False)
        except ServiceHTTPError as exc:
            if exc.status == 503 and exc.payload:
                return exc.payload
            raise

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _backoff(self, attempt: int, hint: float | None) -> float:
        planned = min(
            self.backoff_seconds * (2.0**attempt), self.backoff_cap_seconds
        )
        if hint is not None:
            planned = max(planned, hint)
        return planned

    def _request(
        self,
        method: str,
        path: str,
        body: dict[str, object] | None,
        *,
        idempotent: bool,
        tenant: str | None = None,
        binary: bool = False,
    ):
        retries = self.max_retries if idempotent else 0
        attempt = 0
        while True:
            try:
                return self._attempt(method, path, body, tenant, binary)
            except ServiceHTTPError as exc:
                if exc.status not in RETRYABLE_STATUSES or attempt >= retries:
                    raise
                hint = exc.retry_after
            except ServiceUnreachableError:
                if attempt >= retries:
                    raise
                hint = None
            self._sleep(self._backoff(attempt, hint))
            self.retries_performed += 1
            attempt += 1

    def _attempt(
        self,
        method: str,
        path: str,
        body: dict[str, object] | None,
        tenant: str | None,
        binary: bool,
    ):
        data: bytes | None = None
        headers = {
            "Accept": wire.WIRE_CONTENT_TYPE if binary else "application/json"
        }
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        tenant = tenant if tenant is not None else self.tenant
        if tenant:
            headers[TENANT_HEADER] = tenant
        with self._lock:
            status, response_headers, raw = self._exchange(
                method, path, data, headers
            )
        if status >= 300:
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except (json.JSONDecodeError, UnicodeDecodeError):
                payload = {}
            retry_after = _parse_retry_after(
                response_headers.get("Retry-After")
            )
            raise ServiceHTTPError(status, payload, retry_after)
        content_type = response_headers.get("Content-Type", "")
        if binary and content_type.startswith(wire.WIRE_CONTENT_TYPE):
            return wire.decode_walks(raw)
        return json.loads(raw.decode("utf-8"))

    def _exchange(
        self,
        method: str,
        path: str,
        data: bytes | None,
        headers: dict[str, str],
    ) -> tuple[int, dict[str, str], bytes]:
        """One request/response over the persistent connection.

        A stale reused connection (server closed it while idle) gets one
        transparent reconnect + resend; everything else socket-fatal
        maps onto :class:`ServiceUnreachableError`.
        """
        reused = self._connection is not None
        try:
            return self._roundtrip(method, path, data, headers)
        except _STALE_CONNECTION_ERRORS as exc:
            self._drop_connection()
            if not reused:
                raise ServiceUnreachableError(
                    f"could not reach {self.base_url}: {exc}"
                ) from exc
        except (http.client.HTTPException, OSError) as exc:
            self._drop_connection()
            raise ServiceUnreachableError(
                f"could not reach {self.base_url}: {exc}"
            ) from exc
        # The stale-keep-alive resend: fresh socket, same request.
        try:
            return self._roundtrip(method, path, data, headers)
        except (http.client.HTTPException, OSError) as exc:
            self._drop_connection()
            raise ServiceUnreachableError(
                f"could not reach {self.base_url}: {exc}"
            ) from exc

    def _roundtrip(
        self,
        method: str,
        path: str,
        data: bytes | None,
        headers: dict[str, str],
    ) -> tuple[int, dict[str, str], bytes]:
        connection = self._connection
        if connection is None:
            connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout
            )
            connection.connect()
            self._connection = connection
            self.connections_opened += 1
        connection.request(method, path, body=data, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        response_headers = {
            name: value for name, value in response.getheaders()
        }
        if response.will_close:
            # The server asked for Connection: close; do not reuse.
            self._drop_connection()
        return response.status, response_headers, raw

    def _drop_connection(self) -> None:
        connection = self._connection
        self._connection = None
        if connection is not None:
            try:
                connection.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass


__all__ = [
    "DEFAULT_BACKOFF_CAP_SECONDS",
    "DEFAULT_BACKOFF_SECONDS",
    "DEFAULT_MAX_RETRIES",
    "ServiceClient",
    "ServiceHTTPError",
    "ServiceUnreachableError",
]
