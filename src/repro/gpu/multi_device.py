"""Multi-device random walking with walker transfer (Section 9.1).

Bingo scales across GPUs by 1-D partitioning the vertex set and *moving
walkers, not sampling structures*: when a walker steps onto a vertex owned by
another device, it is shipped to that device (fast peer-to-peer in the real
system).  :class:`MultiDeviceTracker` is the routing bookkeeping of that
policy — a vectorized owner-column tracker the shard-parallel walk runner
(:mod:`repro.walks.parallel`) feeds whole frontiers, counting per-device load
and cross-device transfers.  :class:`MultiDeviceRuntime` keeps the original
scalar per-step API on top of the tracker for the scalability ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.graph.partition import OneDimPartition


@dataclass
class WalkerTransferStats:
    """Counters describing cross-device traffic for a set of walks."""

    steps: int = 0
    transfers: int = 0
    per_device_steps: dict[int, int] = field(default_factory=dict)

    def transfer_rate(self) -> float:
        """Fraction of steps that crossed a partition boundary."""
        return self.transfers / self.steps if self.steps else 0.0

    def load_imbalance(self) -> float:
        """Max over mean per-device step count (1.0 = perfectly balanced)."""
        if not self.per_device_steps:
            return 1.0
        loads = list(self.per_device_steps.values())
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean else 1.0


class MultiDeviceTracker:
    """Vectorized walker-routing bookkeeping over an owner column.

    The tracker does not own samplers; the execution layer reports each
    transition (scalar :meth:`record_step`) or each whole frontier step
    (:meth:`record_frontier`) and the accounting stays engine-agnostic.  A
    transition executes on the device owning its *source* vertex; it is a
    transfer when the destination is owned elsewhere (the walker is handed
    off before the next step).
    """

    def __init__(self, owner: Sequence[int], num_devices: int) -> None:
        if num_devices < 1:
            raise ValueError("tracker needs at least one device")
        self.owner = np.ascontiguousarray(owner, dtype=np.int64)
        self.num_devices = int(num_devices)
        self.stats = WalkerTransferStats(
            per_device_steps={device: 0 for device in range(self.num_devices)}
        )

    @classmethod
    def for_partition(cls, partition: OneDimPartition) -> MultiDeviceTracker:
        """Build a tracker from a 1-D partition's owner column."""
        return cls(partition.owner_array(), partition.num_parts)

    # ------------------------------------------------------------------ #
    def update_owner(self, owner: Sequence[int]) -> None:
        """Swap in a new owner column (after a repartition); stats accumulate."""
        self.owner = np.ascontiguousarray(owner, dtype=np.int64)

    def device_of(self, vertex: int) -> int:
        """The device owning ``vertex`` (round-robin beyond the column)."""
        if vertex < len(self.owner):
            return int(self.owner[vertex])
        return int(vertex) % self.num_devices

    def _owners_of(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`device_of`: round-robin past the owner column."""
        limit = len(self.owner)
        if limit == 0:
            return vertices % self.num_devices
        owners = self.owner[np.minimum(vertices, limit - 1)]
        beyond = vertices >= limit
        if beyond.any():
            owners = np.where(beyond, vertices % self.num_devices, owners)
        return owners

    # ------------------------------------------------------------------ #
    def record_step(self, current_vertex: int, next_vertex: int) -> bool:
        """Record one walk transition; returns True when a transfer happened."""
        device = self.device_of(current_vertex)
        self.stats.steps += 1
        self.stats.per_device_steps[device] = (
            self.stats.per_device_steps.get(device, 0) + 1
        )
        transferred = self.device_of(next_vertex) != device
        if transferred:
            self.stats.transfers += 1
        return transferred

    def record_frontier(
        self, current_vertices: np.ndarray, next_vertices: np.ndarray
    ) -> int:
        """Record one whole frontier step in a few vectorized passes.

        Entries with a negative ``next`` vertex are retiring walkers (the
        ``-1`` padding convention of the walk matrix): they took no
        transition, so they contribute neither steps nor transfers — exactly
        what per-walker :meth:`record_step` calls would have recorded.
        Returns the number of transfers in this step.
        """
        moving = next_vertices >= 0
        if not moving.any():
            return 0
        sources = self._owners_of(current_vertices[moving])
        destinations = self._owners_of(next_vertices[moving])
        counts = np.bincount(sources, minlength=self.num_devices)
        transfers = int(np.count_nonzero(destinations != sources))
        self.stats.steps += int(counts.sum())
        per_device = self.stats.per_device_steps
        for device in np.flatnonzero(counts).tolist():
            per_device[device] = per_device.get(device, 0) + int(counts[device])
        self.stats.transfers += transfers
        return transfers

    def record_walk(self, path: Sequence[int]) -> None:
        """Record every transition of a completed walk path."""
        for current_vertex, next_vertex in zip(path, path[1:]):
            self.record_step(current_vertex, next_vertex)


class MultiDeviceRuntime:
    """Scalar per-step facade over :class:`MultiDeviceTracker`.

    Kept for the scalability ablation and older call-sites; the shard-parallel
    execution path talks to the tracker directly.
    """

    def __init__(self, partition: OneDimPartition) -> None:
        self.partition = partition
        self.tracker = MultiDeviceTracker.for_partition(partition)

    @property
    def stats(self) -> WalkerTransferStats:
        return self.tracker.stats

    def device_of(self, vertex: int) -> int:
        """The device owning ``vertex``."""
        return self.tracker.device_of(vertex)

    def record_step(self, current_vertex: int, next_vertex: int) -> bool:
        """Record one walk transition; returns True when a transfer happened."""
        return self.tracker.record_step(current_vertex, next_vertex)

    def record_walk(self, path: Sequence[int]) -> None:
        """Record every transition of a completed walk path."""
        self.tracker.record_walk(path)
