"""Multi-device random walking with walker transfer (Section 9.1).

Bingo scales across GPUs by 1-D partitioning the vertex set and *moving
walkers, not sampling structures*: when a walker steps onto a vertex owned by
another device, it is shipped to that device (fast peer-to-peer in the real
system).  This module models that policy on top of the
:class:`~repro.graph.partition.OneDimPartition` substrate so the scalability
ablation can count transfers and per-device load without real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.graph.partition import OneDimPartition


@dataclass
class WalkerTransferStats:
    """Counters describing cross-device traffic for a set of walks."""

    steps: int = 0
    transfers: int = 0
    per_device_steps: Dict[int, int] = field(default_factory=dict)

    def transfer_rate(self) -> float:
        """Fraction of steps that crossed a partition boundary."""
        return self.transfers / self.steps if self.steps else 0.0

    def load_imbalance(self) -> float:
        """Max over mean per-device step count (1.0 = perfectly balanced)."""
        if not self.per_device_steps:
            return 1.0
        loads = list(self.per_device_steps.values())
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean else 1.0


class MultiDeviceRuntime:
    """Tracks which simulated device executes each walk step.

    The runtime does not own samplers; engines call :meth:`record_step` for
    every transition so the accounting stays engine-agnostic.
    """

    def __init__(self, partition: OneDimPartition) -> None:
        self.partition = partition
        self.stats = WalkerTransferStats(
            per_device_steps={part: 0 for part in range(partition.num_parts)}
        )

    def device_of(self, vertex: int) -> int:
        """The device owning ``vertex``."""
        return self.partition.part_of(vertex)

    def record_step(self, current_vertex: int, next_vertex: int) -> bool:
        """Record one walk transition; returns True when a transfer happened."""
        device = self.device_of(current_vertex)
        self.stats.steps += 1
        self.stats.per_device_steps[device] = self.stats.per_device_steps.get(device, 0) + 1
        transferred = self.device_of(next_vertex) != device
        if transferred:
            self.stats.transfers += 1
        return transferred

    def record_walk(self, path: Sequence[int]) -> None:
        """Record every transition of a completed walk path."""
        for current_vertex, next_vertex in zip(path, path[1:]):
            self.record_step(current_vertex, next_vertex)
