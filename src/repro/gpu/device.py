"""A behavioural model of a massively parallel device.

The reproduction cannot run CUDA kernels, but the paper's batched-update
claims rest on a simple execution model: a kernel processes N independent
work items with P parallel lanes, so it finishes in ``ceil(N / P)`` steps
rather than N.  :class:`SimulatedDevice` executes the per-item Python
callables sequentially (for correctness) while accounting cycles under that
model, which is what the streaming-vs-batched throughput benchmark
(Figure 12) reports alongside wall-clock time.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import TypeVar
from collections.abc import Callable, Iterable, Sequence

from repro.gpu.memory_pool import MemoryPool

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class DeviceConfig:
    """Shape of the simulated device.

    The defaults loosely follow one NVIDIA A100: 108 SMs × 2048 resident
    threads, 164 KB of shared memory per thread block, 80 GB of global
    memory.  Only ratios matter for the reproduction's conclusions.
    """

    num_sms: int = 108
    threads_per_sm: int = 2048
    shared_memory_bytes: int = 164 * 1024
    global_memory_bytes: int = 80 * (1024 ** 3)

    @property
    def parallel_lanes(self) -> int:
        """Total concurrently resident threads."""
        return self.num_sms * self.threads_per_sm


@dataclass
class KernelLaunch:
    """Record of one simulated kernel launch."""

    name: str
    work_items: int
    parallel_steps: int
    wall_seconds: float


@dataclass
class SimulatedDevice:
    """Executes "kernels" (per-item callables) and accounts parallel cycles."""

    config: DeviceConfig = field(default_factory=DeviceConfig)
    pool: MemoryPool | None = None
    launches: list[KernelLaunch] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.pool is None:
            self.pool = MemoryPool(self.config.global_memory_bytes)

    # ------------------------------------------------------------------ #
    def launch(
        self,
        name: str,
        items: Sequence[T] | Iterable[T],
        body: Callable[[T], R],
    ) -> list[R]:
        """Run ``body`` for every work item, recording the launch.

        Returns the per-item results in order.  The recorded
        ``parallel_steps`` is ``ceil(len(items) / parallel_lanes)``, the
        device-model cost of the launch.
        """
        materialized = list(items)
        start = time.perf_counter()
        results = [body(item) for item in materialized]
        wall = time.perf_counter() - start
        steps = self.parallel_steps(len(materialized))
        self.launches.append(
            KernelLaunch(
                name=name,
                work_items=len(materialized),
                parallel_steps=steps,
                wall_seconds=wall,
            )
        )
        return results

    def record(
        self, name: str, work_items: int, wall_seconds: float = 0.0
    ) -> KernelLaunch:
        """Account a kernel whose body already ran as one vectorized pass.

        The batched ingestion pipeline executes a whole launch's work with
        array operations instead of a per-item Python callable; this method
        records the launch (same parallel-step model as :meth:`launch`)
        without re-executing anything.
        """
        launch = KernelLaunch(
            name=name,
            work_items=work_items,
            parallel_steps=self.parallel_steps(work_items),
            wall_seconds=wall_seconds,
        )
        self.launches.append(launch)
        return launch

    def parallel_steps(self, work_items: int) -> int:
        """``ceil(work_items / parallel_lanes)`` — the modelled kernel duration."""
        if work_items <= 0:
            return 0
        return math.ceil(work_items / self.config.parallel_lanes)

    # ------------------------------------------------------------------ #
    def total_parallel_steps(self) -> int:
        """Sum of modelled steps over every launch so far."""
        return sum(launch.parallel_steps for launch in self.launches)

    def total_kernel_seconds(self) -> float:
        """Sum of host wall-clock seconds spent inside launches."""
        return sum(launch.wall_seconds for launch in self.launches)

    def launches_named(self, name: str) -> list[KernelLaunch]:
        """Launches whose kernel name matches ``name``."""
        return [launch for launch in self.launches if launch.name == name]

    def reset_statistics(self) -> None:
        """Forget recorded launches (memory pool statistics are preserved)."""
        self.launches.clear()

    def shared_memory_capacity(self, element_bytes: int) -> int:
        """How many elements of ``element_bytes`` fit in one block's shared memory.

        The 2-phase delete-and-swap stages its tail window in shared memory
        when it fits (Figure 10b); this helper sizes that window.
        """
        if element_bytes <= 0:
            raise ValueError("element_bytes must be positive")
        return self.config.shared_memory_bytes // element_bytes
