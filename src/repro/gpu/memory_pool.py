"""A Hornet-style pooled allocator for device dynamic arrays.

The paper notes that deletions are cheaper than insertions for Bingo partly
because "memory released during deletion can be managed offline without
incurring immediate overhead in our custom memory pool".  This module models
that pool: fixed power-of-two block classes, a free list per class, and
statistics distinguishing *fresh* allocations (which would hit ``cudaMalloc``)
from *recycled* ones (served from the free list).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OutOfDeviceMemoryError


@dataclass
class PoolStatistics:
    """Counters describing pool behaviour over its lifetime."""

    fresh_allocations: int = 0
    recycled_allocations: int = 0
    releases: int = 0
    bytes_in_use: int = 0
    peak_bytes_in_use: int = 0

    def allocation_count(self) -> int:
        """Total allocations served (fresh + recycled)."""
        return self.fresh_allocations + self.recycled_allocations

    def recycle_rate(self) -> float:
        """Fraction of allocations served from the free list."""
        total = self.allocation_count()
        return self.recycled_allocations / total if total else 0.0


class MemoryPool:
    """Power-of-two block allocator with per-class free lists.

    Parameters
    ----------
    capacity_bytes:
        Total simulated device memory available to the pool.  ``None`` means
        unlimited (useful for tests).
    min_block_bytes:
        Smallest block class; requests are rounded up to a power of two of at
        least this size.
    """

    def __init__(self, capacity_bytes: int | None = None, *, min_block_bytes: int = 64) -> None:
        if min_block_bytes <= 0 or (min_block_bytes & (min_block_bytes - 1)):
            raise ValueError("min_block_bytes must be a positive power of two")
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive or None")
        self.capacity_bytes = capacity_bytes
        self.min_block_bytes = min_block_bytes
        self._free_lists: dict[int, list[int]] = {}
        self._next_handle = 1
        self._handle_sizes: dict[int, int] = {}
        self.stats = PoolStatistics()

    # ------------------------------------------------------------------ #
    def block_size_for(self, requested_bytes: int) -> int:
        """The power-of-two block class serving a request of ``requested_bytes``."""
        if requested_bytes < 0:
            raise ValueError("requested_bytes must be non-negative")
        size = self.min_block_bytes
        while size < requested_bytes:
            size <<= 1
        return size

    def allocate(self, requested_bytes: int) -> int:
        """Allocate a block and return an opaque handle."""
        block = self.block_size_for(requested_bytes)
        free_list = self._free_lists.get(block)
        if free_list:
            handle = free_list.pop()
            self.stats.recycled_allocations += 1
        else:
            if (
                self.capacity_bytes is not None
                and self.stats.bytes_in_use + block > self.capacity_bytes
            ):
                raise OutOfDeviceMemoryError(
                    block, self.capacity_bytes - self.stats.bytes_in_use
                )
            handle = self._next_handle
            self._next_handle += 1
            self.stats.fresh_allocations += 1
        self._handle_sizes[handle] = block
        self.stats.bytes_in_use += block
        self.stats.peak_bytes_in_use = max(
            self.stats.peak_bytes_in_use, self.stats.bytes_in_use
        )
        return handle

    def release(self, handle: int) -> None:
        """Return a block to the pool's free list (no device-level free)."""
        block = self._handle_sizes.pop(handle, None)
        if block is None:
            raise KeyError(f"unknown memory pool handle {handle}")
        self._free_lists.setdefault(block, []).append(handle)
        self.stats.bytes_in_use -= block
        self.stats.releases += 1

    def bytes_in_use(self) -> int:
        """Bytes currently held by live handles."""
        return self.stats.bytes_in_use

    def free_bytes(self) -> int | None:
        """Remaining capacity, or ``None`` for an unbounded pool."""
        if self.capacity_bytes is None:
            return None
        return self.capacity_bytes - self.stats.bytes_in_use
