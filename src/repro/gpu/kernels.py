"""Batched-update kernels (Section 5.2).

The paper's batched workflow is: (host) reorder update requests so the ones
touching the same vertex sit together, (device) per vertex run insert, then
delete, then rebuild, and use the 2-phase parallel delete-and-swap of
Figure 10(b) so many deletions can fill holes concurrently without reading
entries that are themselves being deleted.

This module provides the host-side pieces of that workflow as pure functions
so they can be unit-tested in isolation and reused by
:class:`repro.engines.bingo.BingoEngine`:

* :func:`group_updates_by_vertex` — request reordering.
* :func:`normalize_vertex_updates` — collapse a vertex's request sequence into
  a net set of deletions and insertions (the timestamp-ordered semantics the
  paper preserves when the same edge is inserted and deleted in one batch).
* :func:`parallel_delete_and_swap` — the 2-phase compaction, returning both
  the compacted list and statistics about the phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from repro.graph.update_stream import GraphUpdate, UpdateKind


@dataclass
class BatchStatistics:
    """Counters for one batched-update round."""

    insertions: int = 0
    deletions: int = 0
    cancelled_pairs: int = 0
    touched_vertices: int = 0
    rebuilds: int = 0
    kernel_launches: int = 0
    shared_memory_windows: int = 0
    global_memory_windows: int = 0
    parallel_steps: int = 0

    def merge(self, other: BatchStatistics) -> None:
        """Fold another round's counters into this one."""
        self.insertions += other.insertions
        self.deletions += other.deletions
        self.cancelled_pairs += other.cancelled_pairs
        self.touched_vertices += other.touched_vertices
        self.rebuilds += other.rebuilds
        self.kernel_launches += other.kernel_launches
        self.shared_memory_windows += other.shared_memory_windows
        self.global_memory_windows += other.global_memory_windows
        self.parallel_steps += other.parallel_steps


def group_updates_by_vertex(updates: Iterable[GraphUpdate]) -> dict[int, list[GraphUpdate]]:
    """Reorder a batch so updates of the same source vertex sit together.

    The relative order of updates within one vertex is preserved (timestamps
    stay monotone), which is all the per-vertex kernels rely on.
    """
    grouped: dict[int, list[GraphUpdate]] = {}
    for update in updates:
        grouped.setdefault(update.src, []).append(update)
    return grouped


def normalize_vertex_updates(
    updates: Sequence[GraphUpdate],
    existing_destinations: set[int],
) -> tuple[list[tuple[int, float]], list[int], int]:
    """Collapse one vertex's update sequence into net insertions and deletions.

    The paper allows an edge to be deleted and re-inserted (or inserted and
    deleted) within one batch by time-stamping duplicates; the observable
    result is determined by the *last* operation on each destination.  This
    function replays the sequence and returns

    ``(insertions, deletions, cancelled)`` where ``insertions`` is a list of
    ``(destination, bias)`` to add, ``deletions`` a list of destinations to
    remove, and ``cancelled`` counts insert/delete pairs that annihilated
    (their work disappears from the batch, which is part of why batched
    ingestion is faster than streaming the same requests).
    """
    # destination -> ("insert", bias) | ("delete", None) | ("update", bias)
    net: dict[int, tuple[str, float | None]] = {}
    cancelled = 0
    for update in updates:
        dst = update.dst
        previous = net.get(dst)
        if update.kind is UpdateKind.INSERT:
            if previous is not None and previous[0] == "delete":
                # delete then insert: the edge survives with the new bias.
                net[dst] = ("update", update.bias)
            else:
                net[dst] = ("insert", update.bias)
        else:  # DELETE
            if previous is not None and previous[0] == "insert":
                # insert then delete within the batch: both vanish.
                del net[dst]
                cancelled += 1
            elif previous is not None and previous[0] == "update":
                net[dst] = ("delete", None)
            else:
                net[dst] = ("delete", None)

    insertions: list[tuple[int, float]] = []
    deletions: list[int] = []
    for dst, (action, bias) in net.items():
        if action == "insert":
            insertions.append((dst, float(bias)))
        elif action == "delete":
            deletions.append(dst)
        else:  # "update": delete the old edge, insert the new bias
            if dst in existing_destinations:
                deletions.append(dst)
            insertions.append((dst, float(bias)))
    return insertions, deletions, cancelled


@dataclass
class DeleteSwapResult:
    """Outcome of one 2-phase parallel delete-and-swap compaction."""

    items: list[int] = field(default_factory=list)
    tail_window: int = 0
    deleted_in_tail: int = 0
    front_fills: int = 0
    used_shared_memory: bool = False


def parallel_delete_and_swap(
    items: Sequence[int],
    delete_positions: Iterable[int],
    *,
    shared_memory_capacity: int | None = None,
) -> DeleteSwapResult:
    """Figure 10(b): delete N positions from a compact list, in two phases.

    Phase 1 stages the last N elements (the tail window) — in shared memory
    when ``shared_memory_capacity`` allows — and removes every to-be-deleted
    element that falls inside the window (γ of them).  Phase 2 fills the
    remaining ``N − γ`` to-be-deleted front positions with the ``N − γ``
    surviving tail elements, which by construction are *not* scheduled for
    deletion, so no fill value is itself a victim.

    The result is the same multiset a sequential swap-with-last deletion
    would produce (order may differ), with no holes.
    """
    source = list(items)
    victims = sorted(set(delete_positions))
    if victims and (victims[0] < 0 or victims[-1] >= len(source)):
        raise IndexError("delete position out of range")
    n_delete = len(victims)
    if n_delete == 0:
        return DeleteSwapResult(items=source)

    window_start = len(source) - n_delete
    used_shared = shared_memory_capacity is None or n_delete <= shared_memory_capacity

    victim_set = set(victims)
    # Phase 1: drop victims that already live inside the tail window.
    tail_survivors = [
        source[pos] for pos in range(window_start, len(source)) if pos not in victim_set
    ]
    deleted_in_tail = n_delete - len(tail_survivors)

    # Phase 2: the victims in the front region are exactly n_delete - γ many;
    # fill each with one surviving tail element.
    front_victims = [pos for pos in victims if pos < window_start]
    if len(front_victims) != len(tail_survivors):
        # This cannot happen for well-formed input; guard for safety.
        raise AssertionError("front victim count does not match surviving tail count")
    result = source[:window_start]
    for pos, filler in zip(front_victims, tail_survivors):
        result[pos] = filler

    return DeleteSwapResult(
        items=result,
        tail_window=n_delete,
        deleted_in_tail=deleted_in_tail,
        front_fills=len(front_victims),
        used_shared_memory=used_shared,
    )
