"""Simulated GPU runtime.

The original Bingo is a CUDA system; this package substitutes a behavioural
model of the pieces the paper's design depends on:

* :class:`~repro.gpu.memory_pool.MemoryPool` — the Hornet-style pooled
  allocator backing dynamic arrays ("we also maintain memory pools for
  dynamic arrays to reduce the cost of memory allocation", Section 9.1).
* :class:`~repro.gpu.dynamic_array.DynamicArray` — capacity-doubling device
  arrays used for neighbour lists and group structures.
* :class:`~repro.gpu.device.SimulatedDevice` — a massively-parallel execution
  model (kernel launches over work items, cycle accounting by
  ``ceil(items / lanes)``) used to reason about batched-update parallelism.
* :mod:`~repro.gpu.kernels` — the batched-update workflow of Section 5.2,
  including request reordering by vertex and the 2-phase parallel
  delete-and-swap of Figure 10(b).
* :class:`~repro.gpu.multi_device.MultiDeviceRuntime` — 1-D partitioned
  multi-GPU walking with walker transfer (Section 9.1).
"""

from repro.gpu.memory_pool import MemoryPool, PoolStatistics
from repro.gpu.dynamic_array import DynamicArray
from repro.gpu.device import DeviceConfig, KernelLaunch, SimulatedDevice
from repro.gpu.kernels import (
    BatchStatistics,
    group_updates_by_vertex,
    parallel_delete_and_swap,
)
from repro.gpu.multi_device import MultiDeviceRuntime, WalkerTransferStats

__all__ = [
    "MemoryPool",
    "PoolStatistics",
    "DynamicArray",
    "DeviceConfig",
    "KernelLaunch",
    "SimulatedDevice",
    "BatchStatistics",
    "group_updates_by_vertex",
    "parallel_delete_and_swap",
    "MultiDeviceRuntime",
    "WalkerTransferStats",
]
