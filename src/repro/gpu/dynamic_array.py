"""Capacity-doubling dynamic arrays backed by the simulated memory pool.

Bingo adopts Hornet's dynamic-array design for the adjacency list, the
intra-group neighbour index lists and the inverted indices (Section 9.1).
This class models that container: amortised O(1) append, O(1) swap-with-last
removal, and pool-backed storage so growth/shrink behaviour shows up in the
pool statistics used by the update-time analysis.
"""

from __future__ import annotations

from typing import Generic, TypeVar
from collections.abc import Iterator

from repro.gpu.memory_pool import MemoryPool

T = TypeVar("T")

_DEFAULT_ELEMENT_BYTES = 4


class DynamicArray(Generic[T]):
    """A growable array with explicit capacity and pool-backed storage."""

    def __init__(
        self,
        pool: MemoryPool | None = None,
        *,
        element_bytes: int = _DEFAULT_ELEMENT_BYTES,
        initial_capacity: int = 4,
    ) -> None:
        if element_bytes <= 0:
            raise ValueError("element_bytes must be positive")
        if initial_capacity <= 0:
            raise ValueError("initial_capacity must be positive")
        self._pool = pool
        self._element_bytes = element_bytes
        self._capacity = initial_capacity
        self._items: list[T] = []
        self._handle: int | None = None
        if self._pool is not None:
            self._handle = self._pool.allocate(self._capacity * element_bytes)
        self.grow_count = 0

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __getitem__(self, index: int) -> T:
        return self._items[index]

    def __setitem__(self, index: int, value: T) -> None:
        self._items[index] = value

    @property
    def capacity(self) -> int:
        """Current allocated capacity in elements."""
        return self._capacity

    def append(self, value: T) -> None:
        """Append, doubling capacity (and re-allocating from the pool) when full."""
        if len(self._items) >= self._capacity:
            self._grow()
        self._items.append(value)

    def _grow(self) -> None:
        new_capacity = self._capacity * 2
        if self._pool is not None:
            new_handle = self._pool.allocate(new_capacity * self._element_bytes)
            if self._handle is not None:
                self._pool.release(self._handle)
            self._handle = new_handle
        self._capacity = new_capacity
        self.grow_count += 1

    def swap_remove(self, index: int) -> T:
        """Remove position ``index`` by overwriting it with the tail (O(1))."""
        if not (0 <= index < len(self._items)):
            raise IndexError(f"index {index} out of range")
        last = len(self._items) - 1
        value = self._items[index]
        if index != last:
            self._items[index] = self._items[last]
        self._items.pop()
        return value

    def pop(self) -> T:
        """Remove and return the last element."""
        return self._items.pop()

    def clear(self) -> None:
        """Drop every element (capacity is retained)."""
        self._items.clear()

    def to_list(self) -> list[T]:
        """A copy of the contents as a plain list."""
        return list(self._items)

    def memory_bytes(self) -> int:
        """Modelled bytes of the allocated backing store."""
        return self._capacity * self._element_bytes

    def release(self) -> None:
        """Return the backing store to the pool (the array becomes unusable)."""
        if self._pool is not None and self._handle is not None:
            self._pool.release(self._handle)
            self._handle = None
        self._items.clear()
        self._capacity = 0
