"""Intra-group structures: radix groups and the decimal group.

A :class:`RadixGroup` holds, for one vertex and one bit position ``k``, the
set of *neighbour indices* (positions in the vertex's neighbour list) whose
bias has bit ``k`` set.  Every member carries the identical sub-bias ``2^k``,
so membership alone determines the group weight and intra-group sampling is
uniform.

The group's *representation* follows the adaptive scheme of Section 5.1
(:class:`~repro.core.adaptive.GroupKind`):

* list-backed kinds (regular / sparse / one-element) keep a compact member
  array plus an inverted index (member -> slot) enabling the O(1)
  delete-and-swap of Figure 6;
* the dense kind keeps only a member count and samples by rejection against
  the vertex's bias array, using ``bias & 2^k`` as the acceptance test.

The :class:`DecimalGroup` is the extra group of Section 4.3 that absorbs the
fractional parts of λ-scaled floating-point biases; it is sampled with
rejection (the paper allows ITS or rejection) and its total weight is kept
below ``1/d`` of the vertex weight by the choice of λ.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

import numpy as np

from repro.core.adaptive import GroupKind
from repro.errors import SamplerStateError
from repro.sampling.cost_model import OperationCounter


class RadixGroup:
    """Members of one radix group, under a switchable representation."""

    __slots__ = ("position", "kind", "members", "slots", "_count", "_np_members")

    def __init__(self, position: int, kind: GroupKind = GroupKind.REGULAR) -> None:
        self.position = int(position)
        self.kind = kind
        #: compact member list (neighbour indices); unused in dense mode
        self.members: list[int] = []
        #: inverted index: neighbour index -> slot in ``members``; unused in dense mode
        self.slots: dict[int, int] = {}
        #: member count (the only state kept in dense mode)
        self._count = 0
        #: NumPy mirror of ``members``, built lazily for sample_batch
        self._np_members: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # size / weight
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._count

    @property
    def sub_bias(self) -> int:
        """The identical sub-bias 2^k carried by every member."""
        return 1 << self.position

    def weight(self) -> int:
        """W(p_k) = |G_k| * 2^k (Equation 4)."""
        return self._count * self.sub_bias

    def is_dense(self) -> bool:
        """Whether the group currently uses the structure-free dense representation."""
        return self.kind is GroupKind.DENSE

    # ------------------------------------------------------------------ #
    # membership updates
    # ------------------------------------------------------------------ #
    def add(self, neighbor_index: int, counter: OperationCounter | None = None) -> None:
        """Add a member (the neighbour's bias has bit ``position`` set)."""
        self._count += 1
        self._np_members = None
        if self.kind is GroupKind.DENSE:
            if counter is not None:
                counter.arith(1)
            return
        if neighbor_index in self.slots:
            raise SamplerStateError(
                f"neighbor index {neighbor_index} already in group 2^{self.position}"
            )
        self.slots[neighbor_index] = len(self.members)
        self.members.append(neighbor_index)
        if counter is not None:
            counter.touch(2)

    def remove(self, neighbor_index: int, counter: OperationCounter | None = None) -> None:
        """Remove a member with the delete-and-swap of Figure 6 (O(1))."""
        if self._count <= 0:
            raise SamplerStateError(f"group 2^{self.position} is already empty")
        self._count -= 1
        self._np_members = None
        if self.kind is GroupKind.DENSE:
            if counter is not None:
                counter.arith(1)
            return
        if neighbor_index not in self.slots:
            raise SamplerStateError(
                f"neighbor index {neighbor_index} not in group 2^{self.position}"
            )
        slot = self.slots.pop(neighbor_index)
        last_slot = len(self.members) - 1
        if slot != last_slot:
            moved = self.members[last_slot]
            self.members[slot] = moved
            self.slots[moved] = slot
        self.members.pop()
        if counter is not None:
            counter.touch(3)

    def rename(self, old_index: int, new_index: int, counter: OperationCounter | None = None) -> None:
        """Re-point a member after the vertex neighbour list moved it.

        When the vertex sampler deletes a neighbour it relocates the tail of
        its neighbour list into the vacated slot; every group containing the
        relocated neighbour must update its stored index.  O(1) via the
        inverted index; a no-op for dense groups (membership is implicit).
        """
        if self.kind is GroupKind.DENSE:
            return
        if old_index == new_index:
            return
        if old_index not in self.slots:
            raise SamplerStateError(
                f"neighbor index {old_index} not in group 2^{self.position}"
            )
        slot = self.slots.pop(old_index)
        self.members[slot] = new_index
        self.slots[new_index] = slot
        self._np_members = None
        if counter is not None:
            counter.touch(2)

    def contains(self, neighbor_index: int) -> bool:
        """Membership test (list-backed kinds only)."""
        if self.kind is GroupKind.DENSE:
            raise SamplerStateError("dense groups do not support membership queries")
        return neighbor_index in self.slots

    # ------------------------------------------------------------------ #
    # representation changes
    # ------------------------------------------------------------------ #
    def convert(
        self,
        new_kind: GroupKind,
        *,
        integer_parts: Sequence[int] | None = None,
        counter: OperationCounter | None = None,
    ) -> None:
        """Switch to ``new_kind``, rebuilding structures if required.

        Converting *from* the dense representation needs the vertex's
        integer bias array (``integer_parts``) to rediscover membership,
        which costs O(d) — the expensive case the batched-update workflow
        defers to its rebuild phase (Section 5.2).
        """
        if new_kind is self.kind:
            return
        if self.kind is GroupKind.DENSE and new_kind is not GroupKind.DENSE:
            if integer_parts is None:
                raise SamplerStateError(
                    "converting a dense group to a list-backed kind requires the "
                    "vertex integer bias array"
                )
            mask = self.sub_bias
            self.members = [
                index for index, value in enumerate(integer_parts) if value & mask
            ]
            self.slots = {index: slot for slot, index in enumerate(self.members)}
            self._count = len(self.members)
            if counter is not None:
                counter.touch(len(integer_parts))
        elif new_kind is GroupKind.DENSE:
            # Dropping to dense discards the member structures.
            self.members = []
            self.slots = {}
            if counter is not None:
                counter.touch(1)
        self._np_members = None
        self.kind = new_kind

    # ------------------------------------------------------------------ #
    # intra-group sampling
    # ------------------------------------------------------------------ #
    def sample(
        self,
        rng: random.Random,
        *,
        integer_parts: Sequence[int] | None = None,
        counter: OperationCounter | None = None,
        max_trials: int = 1_000_000,
    ) -> int:
        """Uniformly sample a member neighbour index.

        List-backed kinds index the member array directly (O(1)).  Dense
        groups run the rejection loop of Section 5.1: propose a uniform
        neighbour from the vertex list and accept when its bias has the
        group's bit set.  The rejection probability is below 1 − α% by the
        density threshold.
        """
        if self._count == 0:
            raise SamplerStateError(f"group 2^{self.position} is empty")
        if self.kind is not GroupKind.DENSE:
            slot = rng.randrange(len(self.members))
            if counter is not None:
                counter.draw(1)
                counter.touch(1)
            return self.members[slot]
        if integer_parts is None:
            raise SamplerStateError("dense-group sampling requires the vertex bias array")
        mask = self.sub_bias
        degree = len(integer_parts)
        for _ in range(max_trials):
            index = rng.randrange(degree)
            if counter is not None:
                counter.draw(1)
                counter.touch(1)
                counter.compare(1)
            if integer_parts[index] & mask:
                return index
        raise SamplerStateError(
            f"dense-group rejection sampling exceeded {max_trials} trials"
        )

    def sample_batch(
        self,
        count: int,
        rng: np.random.Generator,
        *,
        integer_parts: np.ndarray | None = None,
        counter: OperationCounter | None = None,
        max_rounds: int = 10_000,
    ) -> np.ndarray:
        """Uniformly sample ``count`` member neighbour indices at once.

        List-backed kinds index the member array with one vector of uniform
        slots.  Dense groups run the Section 5.1 rejection loop vectorized:
        every still-pending draw proposes a uniform neighbour per round and
        accepts when the group's bit is set in its integer bias.
        """
        if self._count == 0:
            raise SamplerStateError(f"group 2^{self.position} is empty")
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        if self.kind is not GroupKind.DENSE:
            if self._np_members is None:
                self._np_members = np.asarray(self.members, dtype=np.int64)
            slots = rng.integers(0, len(self.members), size=count)
            if counter is not None:
                counter.draw(count)
                counter.touch(count)
            return self._np_members[slots]
        if integer_parts is None:
            raise SamplerStateError("dense-group sampling requires the vertex bias array")
        mask = self.sub_bias
        degree = len(integer_parts)
        out = np.empty(count, dtype=np.int64)
        pending = np.arange(count)
        for _ in range(max_rounds):
            proposals = rng.integers(0, degree, size=len(pending))
            if counter is not None:
                counter.draw(len(pending))
                counter.touch(len(pending))
                counter.compare(len(pending))
            accepted = (integer_parts[proposals] & mask) != 0
            out[pending[accepted]] = proposals[accepted]
            pending = pending[~accepted]
            if len(pending) == 0:
                return out
        raise SamplerStateError(
            f"dense-group rejection sampling exceeded {max_rounds} rounds"
        )

    def member_list(self, integer_parts: Sequence[int] | None = None) -> list[int]:
        """The member neighbour indices (scanning the bias array for dense groups)."""
        if self.kind is not GroupKind.DENSE:
            return list(self.members)
        if integer_parts is None:
            raise SamplerStateError("dense groups need the vertex bias array to enumerate")
        mask = self.sub_bias
        return [index for index, value in enumerate(integer_parts) if value & mask]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RadixGroup(2^{self.position}, kind={self.kind.value}, size={self._count})"
        )


class DecimalGroup:
    """The fractional-bias group of Section 4.3.

    Holds ``neighbour index -> fractional sub-bias`` for the residues left
    after λ-scaling; sampled by rejection with the current maximum fraction
    as the envelope (fractions are < 1 so the envelope is tight).
    """

    __slots__ = ("fractions", "_total", "_np_arrays")

    def __init__(self) -> None:
        self.fractions: dict[int, float] = {}
        self._total = 0.0
        #: NumPy mirrors of the (index, fraction) pairs for sample_batch
        self._np_arrays = None

    def __len__(self) -> int:
        return len(self.fractions)

    def weight(self) -> float:
        """W_D: total fractional weight held by the group."""
        # Recompute lazily from the dict when drift would matter; the running
        # total avoids O(d) scans on the hot path.
        return max(0.0, self._total)

    def add(self, neighbor_index: int, fraction: float) -> None:
        """Register a fractional sub-bias for a neighbour."""
        if not 0.0 < fraction < 1.0:
            raise SamplerStateError(f"fraction must lie in (0, 1), got {fraction}")
        if neighbor_index in self.fractions:
            raise SamplerStateError(f"neighbor index {neighbor_index} already in decimal group")
        self.fractions[neighbor_index] = fraction
        self._total += fraction
        self._np_arrays = None

    def add_many(self, neighbor_indices: Sequence[int], fractions: Sequence[float]) -> None:
        """Register a slice of fractional sub-biases (bulk form of :meth:`add`).

        The running total is accumulated in the given order, so the stored
        state is identical to repeated :meth:`add` calls.
        """
        registered = self.fractions
        total = self._total
        for neighbor_index, fraction in zip(neighbor_indices, fractions):
            if not 0.0 < fraction < 1.0:
                raise SamplerStateError(f"fraction must lie in (0, 1), got {fraction}")
            if neighbor_index in registered:
                raise SamplerStateError(
                    f"neighbor index {neighbor_index} already in decimal group"
                )
            registered[neighbor_index] = fraction
            total += fraction
        self._total = total
        self._np_arrays = None

    def remove(self, neighbor_index: int) -> None:
        """Drop a neighbour's fractional sub-bias."""
        fraction = self.fractions.pop(neighbor_index, None)
        if fraction is None:
            raise SamplerStateError(f"neighbor index {neighbor_index} not in decimal group")
        self._total -= fraction
        self._np_arrays = None

    def rename(self, old_index: int, new_index: int) -> None:
        """Re-point an entry after the vertex neighbour list moved it."""
        if old_index == new_index:
            return
        if old_index not in self.fractions:
            raise SamplerStateError(f"neighbor index {old_index} not in decimal group")
        self.fractions[new_index] = self.fractions.pop(old_index)
        self._np_arrays = None

    def contains(self, neighbor_index: int) -> bool:
        """Whether the neighbour has a fractional sub-bias registered."""
        return neighbor_index in self.fractions

    def fraction_of(self, neighbor_index: int) -> float:
        """The stored fractional sub-bias of a neighbour (0.0 when absent)."""
        return self.fractions.get(neighbor_index, 0.0)

    def sample(
        self,
        rng: random.Random,
        *,
        counter: OperationCounter | None = None,
        max_trials: int = 1_000_000,
    ) -> int:
        """Draw a neighbour index with probability proportional to its fraction."""
        if not self.fractions:
            raise SamplerStateError("decimal group is empty")
        indices = list(self.fractions.keys())
        envelope = max(self.fractions.values())
        for _ in range(max_trials):
            index = indices[rng.randrange(len(indices))]
            threshold = rng.random() * envelope
            if counter is not None:
                counter.draw(2)
                counter.compare(1)
                counter.touch(1)
            if threshold < self.fractions[index]:
                return index
        raise SamplerStateError(
            f"decimal-group rejection sampling exceeded {max_trials} trials"
        )

    def sample_batch(
        self,
        count: int,
        rng: np.random.Generator,
        *,
        counter: OperationCounter | None = None,
        max_rounds: int = 10_000,
    ) -> np.ndarray:
        """Draw ``count`` neighbour indices ∝ fraction, rejection vectorized."""
        if not self.fractions:
            raise SamplerStateError("decimal group is empty")
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        if self._np_arrays is None:
            self._np_arrays = (
                np.fromiter(self.fractions.keys(), dtype=np.int64, count=len(self.fractions)),
                np.fromiter(
                    self.fractions.values(), dtype=np.float64, count=len(self.fractions)
                ),
            )
        indices, fractions = self._np_arrays
        envelope = float(fractions.max())
        out = np.empty(count, dtype=np.int64)
        pending = np.arange(count)
        for _ in range(max_rounds):
            proposals = rng.integers(0, len(indices), size=len(pending))
            thresholds = rng.random(len(pending)) * envelope
            if counter is not None:
                counter.draw(2 * len(pending))
                counter.compare(len(pending))
                counter.touch(len(pending))
            accepted = thresholds < fractions[proposals]
            out[pending[accepted]] = indices[proposals[accepted]]
            pending = pending[~accepted]
            if len(pending) == 0:
                return out
        raise SamplerStateError(
            f"decimal-group rejection sampling exceeded {max_rounds} rounds"
        )
