"""Bingo with arbitrary radix bases (supplement Section 9.2).

With a radix base ``B = 2^r`` larger than 2, a bias decomposes into base-B
digits; digit position ``i`` forms group ``B^i`` but — unlike the binary case
— members of one group can carry *different* digit values (1 .. B-1), so the
group is no longer uniform.  The supplement's fix is one extra hierarchy
level: inside each group, members are bucketed into *subgroups* by digit
value, an inter-subgroup alias table picks the subgroup, and the final pick
inside a subgroup is uniform.

Sampling therefore costs three O(1) stages; updates touch at most
``ceil(log_B(max_bias))`` groups, which shrinks K at the price of the nested
structure (the reason the paper leaves it to CPU implementations).  This
module provides that design as a stand-alone sampler so the ablation
benchmark can compare K and update cost across bases.
"""

from __future__ import annotations


from repro.errors import EmptySamplerError, SamplerStateError
from repro.sampling.alias import AliasTable
from repro.sampling.base import DynamicSampler, SamplerKind
from repro.sampling.cost_model import OperationCounter
from repro.utils.rng import RandomSource
from repro.utils.validation import check_bias


def digits_in_base(value: int, base: int) -> list[tuple[int, int]]:
    """Non-zero base-``base`` digits of ``value`` as ``(position, digit)`` pairs."""
    if value <= 0:
        raise ValueError("value must be positive")
    if base < 2:
        raise ValueError("base must be at least 2")
    digits = []
    position = 0
    while value:
        digit = value % base
        if digit:
            digits.append((position, digit))
        value //= base
        position += 1
    return digits


class _Subgroup:
    """Members of one (group position, digit value) bucket."""

    __slots__ = ("digit", "members", "slots")

    def __init__(self, digit: int) -> None:
        self.digit = digit
        self.members: list[int] = []
        self.slots: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self.members)

    def add(self, neighbor_index: int) -> None:
        if neighbor_index in self.slots:
            raise SamplerStateError(f"index {neighbor_index} already in subgroup {self.digit}")
        self.slots[neighbor_index] = len(self.members)
        self.members.append(neighbor_index)

    def remove(self, neighbor_index: int) -> None:
        slot = self.slots.pop(neighbor_index, None)
        if slot is None:
            raise SamplerStateError(f"index {neighbor_index} not in subgroup {self.digit}")
        last = len(self.members) - 1
        if slot != last:
            moved = self.members[last]
            self.members[slot] = moved
            self.slots[moved] = slot
        self.members.pop()

    def rename(self, old_index: int, new_index: int) -> None:
        if old_index == new_index:
            return
        slot = self.slots.pop(old_index, None)
        if slot is None:
            raise SamplerStateError(f"index {old_index} not in subgroup {self.digit}")
        self.members[slot] = new_index
        self.slots[new_index] = slot


class _DigitGroup:
    """All members whose bias has a non-zero digit at one base-B position."""

    __slots__ = ("position", "base", "subgroups")

    def __init__(self, position: int, base: int) -> None:
        self.position = position
        self.base = base
        self.subgroups: dict[int, _Subgroup] = {}

    def __len__(self) -> int:
        return sum(len(sub) for sub in self.subgroups.values())

    def weight(self) -> int:
        """Σ digit * B^position over members."""
        unit = self.base ** self.position
        return sum(sub.digit * len(sub) * unit for sub in self.subgroups.values())

    def add(self, neighbor_index: int, digit: int) -> None:
        subgroup = self.subgroups.get(digit)
        if subgroup is None:
            subgroup = _Subgroup(digit)
            self.subgroups[digit] = subgroup
        subgroup.add(neighbor_index)

    def remove(self, neighbor_index: int, digit: int) -> None:
        subgroup = self.subgroups.get(digit)
        if subgroup is None:
            raise SamplerStateError(f"no subgroup for digit {digit}")
        subgroup.remove(neighbor_index)
        if not len(subgroup):
            del self.subgroups[digit]

    def rename(self, old_index: int, new_index: int, digit: int) -> None:
        subgroup = self.subgroups.get(digit)
        if subgroup is None:
            raise SamplerStateError(f"no subgroup for digit {digit}")
        subgroup.rename(old_index, new_index)


class ArbitraryRadixSampler(DynamicSampler):
    """Three-level hierarchical sampler with radix base ``2^radix_bits``.

    ``radix_bits = 1`` reduces to the binary Bingo scheme (every subgroup has
    digit 1); larger bases reduce the number of digit groups K at the cost of
    nested alias tables.
    """

    kind = SamplerKind.BINGO

    def __init__(
        self,
        *,
        radix_bits: int = 2,
        rng: RandomSource = None,
        counter: OperationCounter | None = None,
    ) -> None:
        super().__init__(rng=rng, counter=counter)
        if radix_bits < 1:
            raise ValueError("radix_bits must be at least 1")
        self.radix_bits = int(radix_bits)
        self.base = 1 << self.radix_bits
        self._ids: list[int] = []
        self._biases: list[int] = []
        self._index_of: dict[int, int] = {}
        self._groups: dict[int, _DigitGroup] = {}
        self._dirty = True

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def insert(self, candidate: int, bias: float) -> None:
        check_bias(bias)
        bias_int = int(bias)
        if bias_int != bias:
            raise SamplerStateError(
                "ArbitraryRadixSampler accepts integer biases only; scale floats "
                "with an amortization factor first"
            )
        if candidate in self._index_of:
            raise SamplerStateError(f"candidate {candidate} already present")
        index = len(self._ids)
        self._index_of[candidate] = index
        self._ids.append(candidate)
        self._biases.append(bias_int)
        for position, digit in digits_in_base(bias_int, self.base):
            group = self._groups.get(position)
            if group is None:
                group = _DigitGroup(position, self.base)
                self._groups[position] = group
            group.add(index, digit)
        self.counter.touch(2 + len(digits_in_base(bias_int, self.base)))
        self._dirty = True

    def delete(self, candidate: int) -> None:
        if candidate not in self._index_of:
            raise SamplerStateError(f"candidate {candidate} not present")
        index = self._index_of.pop(candidate)
        bias_int = self._biases[index]
        for position, digit in digits_in_base(bias_int, self.base):
            self._groups[position].remove(index, digit)
        last = len(self._ids) - 1
        if index != last:
            moved_id = self._ids[last]
            moved_bias = self._biases[last]
            self._ids[index] = moved_id
            self._biases[index] = moved_bias
            self._index_of[moved_id] = index
            for position, digit in digits_in_base(moved_bias, self.base):
                self._groups[position].rename(last, index, digit)
        self._ids.pop()
        self._biases.pop()
        self.counter.touch(4)
        self._dirty = True

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def _rebuild(self) -> None:
        self._group_alias = AliasTable(rng=self._rng, counter=self.counter)
        self._subgroup_alias: dict[int, AliasTable] = {}
        for position, group in self._groups.items():
            weight = group.weight()
            if weight <= 0:
                continue
            self._group_alias.insert(position, float(weight))
            sub_alias = AliasTable(rng=self._rng, counter=self.counter)
            unit = self.base ** position
            for digit, subgroup in group.subgroups.items():
                sub_alias.insert(digit, float(digit * len(subgroup) * unit))
            sub_alias.rebuild()
            self._subgroup_alias[position] = sub_alias
        if len(self._group_alias) > 0:
            self._group_alias.rebuild()
        self._dirty = False

    def sample(self) -> int:
        if not self._ids:
            raise EmptySamplerError("arbitrary-radix sampler holds no candidates")
        if self._dirty:
            self._rebuild()
        position = self._group_alias.sample()
        digit = self._subgroup_alias[position].sample()
        subgroup = self._groups[position].subgroups[digit]
        slot = self._rng.randrange(len(subgroup))
        self.counter.draw(1)
        self.counter.touch(2)
        return self._ids[subgroup.members[slot]]

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._ids)

    def candidates(self) -> list[tuple[int, float]]:
        return [(cid, float(bias)) for cid, bias in zip(self._ids, self._biases)]

    def total_bias(self) -> float:
        return float(sum(self._biases))

    def num_groups(self) -> int:
        """Number of non-empty digit groups (the K reduced by larger bases)."""
        return sum(1 for group in self._groups.values() if len(group) > 0)

    def memory_bytes(self) -> int:
        index_bytes = 4
        total = len(self._ids) * (index_bytes + 8)
        for group in self._groups.values():
            for subgroup in group.subgroups.values():
                total += len(subgroup) * index_bytes * 2
            total += len(group.subgroups) * (8 + index_bytes)
        total += len(self._groups) * (8 + index_bytes)
        return total
