"""Byte-level memory accounting for Bingo's sampling structures.

The paper's memory results (Table 3's memory columns, Figure 11's BS-vs-GA
comparison) are driven by how much auxiliary state each radix group keeps:

* **baseline (BS)** — every group stores a full intra-group neighbour index
  list plus an inverted index of size *d* (the naive design of Section 4.4),
  so a vertex costs O(d · K);
* **group adaption (GA)** — dense groups keep nothing, one-element groups a
  single entry, sparse groups a compact inverted map, regular groups the full
  structures.

Because a pure-Python object graph has unrepresentative per-object overhead,
the reproduction *models* memory the way the CUDA implementation would lay it
out: 4-byte neighbour indices, 8-byte biases, dense arrays.  The same model
is applied to every engine so the comparison stays apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping

from repro.core.adaptive import GroupKind

#: Modelled width of a neighbour index / slot entry (32-bit, as on the GPU).
INDEX_BYTES = 4
#: Modelled width of a bias value (64-bit float / long).
BIAS_BYTES = 8
#: Modelled width of one alias-table bucket (probability + alias index).
ALIAS_BUCKET_BYTES = BIAS_BYTES + INDEX_BYTES


def group_memory_bytes(kind: GroupKind, group_size: int, degree: int) -> int:
    """Modelled bytes for one radix group's intra-group structures.

    Parameters
    ----------
    kind:
        The group's representation.
    group_size:
        Number of members |G_k|.
    degree:
        The owning vertex's degree d (the size of a full inverted index).
    """
    if group_size < 0 or degree < 0:
        raise ValueError("group_size and degree must be non-negative")
    if group_size == 0:
        return 0
    if kind is GroupKind.DENSE:
        # Only the member counter.
        return INDEX_BYTES
    if kind is GroupKind.ONE_ELEMENT:
        # A single inline member entry.
        return INDEX_BYTES
    if kind is GroupKind.SPARSE:
        # Compact member list + compact inverted map (one entry per member).
        return group_size * INDEX_BYTES * 2
    # Regular: member list + full inverted index of size d.
    return group_size * INDEX_BYTES + degree * INDEX_BYTES


@dataclass
class MemoryReport:
    """Per-component memory totals for one engine / one experiment."""

    components: dict[str, int] = field(default_factory=dict)

    def add(self, component: str, num_bytes: int) -> None:
        """Accumulate ``num_bytes`` under ``component``."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self.components[component] = self.components.get(component, 0) + int(num_bytes)

    def get(self, component: str) -> int:
        """Bytes recorded for ``component`` (0 when absent)."""
        return self.components.get(component, 0)

    def total_bytes(self) -> int:
        """Total modelled bytes across components."""
        return sum(self.components.values())

    def total_gigabytes(self) -> float:
        """Total in GB (the unit the paper reports)."""
        return self.total_bytes() / (1024.0 ** 3)

    def merge(self, other: MemoryReport) -> None:
        """Fold another report into this one."""
        for component, num_bytes in other.components.items():
            self.add(component, num_bytes)

    def as_dict(self) -> dict[str, int]:
        """A copy of the component table."""
        return dict(self.components)


def vertex_memory_bytes(
    group_sizes: Mapping[int, int],
    group_kinds: Mapping[int, GroupKind],
    degree: int,
    *,
    decimal_members: int = 0,
    include_neighbor_list: bool = True,
) -> MemoryReport:
    """Modelled memory for one vertex's full Bingo sampling state.

    ``group_sizes`` and ``group_kinds`` are keyed by bit position.  The report
    breaks the total into the components Figure 11 plots separately (dense /
    one-element / sparse / regular group structures), plus the neighbour list,
    the decimal group and the inter-group alias table.
    """
    report = MemoryReport()
    if include_neighbor_list:
        report.add("neighbor_list", degree * (INDEX_BYTES + BIAS_BYTES))
    for position, size in group_sizes.items():
        kind = group_kinds.get(position, GroupKind.REGULAR)
        report.add(f"group:{kind.value}", group_memory_bytes(kind, size, degree))
    if decimal_members:
        report.add("group:decimal", decimal_members * (INDEX_BYTES + BIAS_BYTES))
    num_groups = sum(1 for size in group_sizes.values() if size > 0)
    if decimal_members:
        num_groups += 1
    report.add("inter_group_alias", num_groups * ALIAS_BUCKET_BYTES)
    return report


def csr_memory_bytes(num_vertices: int, num_arcs: int) -> int:
    """Modelled bytes of a CSR snapshot (offsets + targets + biases)."""
    return (num_vertices + 1) * 8 + num_arcs * (INDEX_BYTES + BIAS_BYTES)


def alias_engine_memory_bytes(degrees: Iterable[int]) -> int:
    """Modelled bytes of per-vertex alias tables (KnightKing-style baseline)."""
    total = 0
    for degree in degrees:
        total += degree * (ALIAS_BUCKET_BYTES + INDEX_BYTES)
    return total


def its_engine_memory_bytes(degrees: Iterable[int]) -> int:
    """Modelled bytes of per-vertex prefix-sum arrays (gSampler-style baseline)."""
    total = 0
    for degree in degrees:
        total += degree * BIAS_BYTES
    return total
