"""The per-vertex Bingo sampler: hierarchical sampling over radix groups.

This class is the reproduction of Sections 4 and 5.1 for a single vertex:

* the neighbour list (candidate IDs + biases) kept compact with
  swap-with-last deletion, exactly like the graph substrate;
* one :class:`~repro.core.groups.RadixGroup` per set bit position, holding
  neighbour *indices* plus an inverted index for O(1) delete-and-swap
  (Figure 6);
* a :class:`~repro.core.groups.DecimalGroup` absorbing fractional residues of
  λ-scaled floating-point biases (Section 4.3);
* an inter-group alias table over the group weights (Equation 5), rebuilt in
  O(K) after every structural change (or deferred in batched mode);
* the adaptive group representation of Section 5.1, with group-type
  conversions recorded in an optional
  :class:`~repro.core.adaptive.ConversionTracker`.

Sampling follows the two-stage process of Section 4.1: alias-sample a group,
then uniformly sample a member inside it (rejection against the neighbour
bias array for dense groups), giving O(1) expected time.  Insertion and
deletion touch at most ``popcount(w) + 1 <= K + 1`` groups plus one O(K)
alias rebuild, giving the O(K) update cost of Table 1.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.adaptive import ConversionTracker, GroupClassifier, GroupKind
from repro.core.groups import DecimalGroup, RadixGroup
from repro.core.memory_model import MemoryReport, vertex_memory_bytes
from repro.core.radix import decompose_bias, split_scaled_bias, split_scaled_biases
from repro.errors import EmptySamplerError, SamplerStateError
from repro.sampling.alias import AliasTable
from repro.sampling.base import DynamicSampler, SamplerKind
from repro.sampling.cost_model import OperationCounter
from repro.utils.rng import NumpySource, RandomSource, ensure_np_rng
from repro.utils.validation import check_bias

#: Sentinel group key used for the decimal group in the inter-group table.
DECIMAL_GROUP_KEY = -1


class BingoVertexSampler(DynamicSampler):
    """Radix-factorized biased sampler for one vertex's neighbourhood.

    Parameters
    ----------
    lam:
        Amortization factor λ applied to every bias before radix
        decomposition.  Use 1.0 (default) for integer biases; floating-point
        workloads typically pass 10.0 or use
        :func:`repro.core.radix.choose_amortization_factor`.
    classifier:
        Group-representation policy (Equation 9).  Pass
        ``GroupClassifier(adaptive=False)`` to reproduce the BS baseline.
    conversion_tracker:
        Optional tracker receiving group-type transitions (Table 4).
    auto_rebuild:
        When ``True`` (streaming mode) the inter-group alias table and group
        classification are refreshed after every insert/delete.  Batched
        updates set this to ``False``, apply a whole batch, then call
        :meth:`rebuild` once — the single-rebuild optimisation of Section 5.2.
    """

    kind = SamplerKind.BINGO

    def __init__(
        self,
        *,
        rng: RandomSource = None,
        counter: OperationCounter | None = None,
        lam: float = 1.0,
        classifier: GroupClassifier | None = None,
        conversion_tracker: ConversionTracker | None = None,
        auto_rebuild: bool = True,
    ) -> None:
        super().__init__(rng=rng, counter=counter)
        if lam <= 0:
            raise ValueError("amortization factor lam must be positive")
        self.lam = float(lam)
        self.classifier = classifier if classifier is not None else GroupClassifier()
        self.conversion_tracker = conversion_tracker
        self.auto_rebuild = bool(auto_rebuild)

        # Neighbour list (candidate IDs aligned with biases and scaled parts).
        self._ids: list[int] = []
        self._biases: list[float] = []
        self._integer_parts: list[int] = []
        self._fractions: list[float] = []
        self._index_of: dict[int, int] = {}

        # Radix groups keyed by bit position, plus the decimal group.
        self._groups: dict[int, RadixGroup] = {}
        self._decimal = DecimalGroup()

        # Inter-group alias table over group keys (bit positions; -1 = decimal).
        self._inter_group = AliasTable(rng=self._rng, counter=self.counter)
        self._inter_dirty = True
        self.rebuild_count = 0
        # NumPy mirrors (ids, key lut, flat member table, offsets, sizes),
        # built lazily for sample_many.
        self._np_cache: tuple[np.ndarray, ...] | None = None

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_neighbors(
        cls,
        pairs: Iterable[tuple[int, float]],
        **kwargs,
    ) -> BingoVertexSampler:
        """Build a sampler from ``(neighbour id, bias)`` pairs."""
        sampler = cls(**kwargs)
        previous_mode = sampler.auto_rebuild
        sampler.auto_rebuild = False
        for candidate, bias in pairs:
            sampler.insert(candidate, bias)
        sampler.auto_rebuild = previous_mode
        sampler.rebuild()
        return sampler

    # ------------------------------------------------------------------ #
    # mutation (Table 1: O(K))
    # ------------------------------------------------------------------ #
    def insert(self, candidate: int, bias: float) -> None:
        """Insert a neighbour: append, register sub-biases, refresh inter-group table."""
        check_bias(bias)
        if candidate in self._index_of:
            raise SamplerStateError(f"candidate {candidate} already present")

        integer_part, fraction = split_scaled_bias(bias, self.lam)
        if integer_part == 0 and fraction == 0.0:
            raise SamplerStateError(
                f"bias {bias} scaled by lam={self.lam} vanishes; increase lam"
            )

        index = len(self._ids)
        self._index_of[candidate] = index
        self._ids.append(candidate)
        self._biases.append(float(bias))
        self._integer_parts.append(integer_part)
        self._fractions.append(fraction)
        self.counter.touch(4)

        if integer_part:
            for position in decompose_bias(integer_part):
                self._group_for(position).add(index, self.counter)
        if fraction:
            self._decimal.add(index, fraction)
            self.counter.touch(1)

        self._inter_dirty = True
        self._np_cache = None
        if self.auto_rebuild:
            self.rebuild()

    def insert_many(
        self,
        candidates,
        biases,
        *,
        split_parts: tuple[Sequence[int], Sequence[float]] | None = None,
    ) -> None:
        """Insert a whole slice of neighbours in one pass.

        The radix decomposition of every new bias is computed with array
        arithmetic (one vectorized :func:`repro.core.radix.split_scaled_bias`
        over the slice) and each touched radix group receives its new members
        in one bulk append.  The resulting state — neighbour order, group
        member order, group creation order, decimal-group running total — is
        identical to calling :meth:`insert` once per pair, so the batched
        and streaming ingestion paths remain interchangeable.

        ``split_parts`` optionally carries pre-split ``(integer_parts,
        fractions)`` sequences for the slice — the batched engine splits a
        whole update batch in one vectorized pass and hands each vertex its
        share, so small slices run allocation-free here.  The parts must be
        exactly what :func:`split_scaled_bias` yields under this sampler's
        λ, for already-validated positive finite biases.

        Like :meth:`insert`, triggers one :meth:`rebuild` at the end when
        ``auto_rebuild`` is set (instead of one per element).
        """
        count = len(candidates)
        if count == 0:
            return
        if len(biases) != count:
            raise SamplerStateError("candidates and biases must have matching lengths")
        candidate_list = (
            candidates.tolist() if isinstance(candidates, np.ndarray) else list(candidates)
        )
        bias_list = biases.tolist() if isinstance(biases, np.ndarray) else list(biases)

        if split_parts is not None:
            integer_list, fraction_list = split_parts
            integer_list = (
                integer_list.tolist()
                if isinstance(integer_list, np.ndarray)
                else list(integer_list)
            )
            fraction_list = (
                fraction_list.tolist()
                if isinstance(fraction_list, np.ndarray)
                else list(fraction_list)
            )
        elif count < 16:
            # Small slices: the scalar split beats vectorization overhead.
            integer_list = []
            fraction_list = []
            for bias in bias_list:
                integer_part, fraction = split_scaled_bias(bias, self.lam)
                integer_list.append(integer_part)
                fraction_list.append(fraction)
        else:
            integer_list, fraction_list = split_scaled_biases(bias_list, self.lam)

        index_of = self._index_of
        for candidate in candidate_list:
            if candidate in index_of:
                raise SamplerStateError(f"candidate {candidate} already present")
        if count > 1 and len(set(candidate_list)) != count:
            raise SamplerStateError("duplicate candidates within one insert_many slice")
        for integer_part, fraction in zip(integer_list, fraction_list):
            if integer_part == 0 and fraction == 0.0:
                raise SamplerStateError(
                    f"bias scaled by lam={self.lam} vanishes; increase lam"
                )

        start = len(self._ids)
        index_of.update(zip(candidate_list, range(start, start + count)))
        self._ids.extend(candidate_list)
        self._biases.extend(bias_list)
        self._integer_parts.extend(integer_list)
        self._fractions.extend(fraction_list)
        self.counter.touch(4 * count)

        # Scatter the new neighbour indices into their radix groups in the
        # scalar encounter order (candidate-major, bit ascending), creating
        # missing groups on first contact exactly like the scalar loop.  The
        # group membership update is inlined (new indices cannot collide, so
        # the scalar duplicate guard is vacuous here).
        groups = self._groups
        dense_kind = GroupKind.DENSE
        decimal_indices: list[int] = []
        decimal_fractions: list[float] = []
        for offset, (integer_part, fraction) in enumerate(
            zip(integer_list, fraction_list)
        ):
            index = start + offset
            if integer_part:
                value = integer_part
                position = 0
                while value:
                    if value & 1:
                        group = groups.get(position)
                        if group is None:
                            group = RadixGroup(position, GroupKind.REGULAR)
                            groups[position] = group
                        group._count += 1
                        group._np_members = None
                        if group.kind is not dense_kind:
                            members = group.members
                            group.slots[index] = len(members)
                            members.append(index)
                    value >>= 1
                    position += 1
            if fraction:
                decimal_indices.append(index)
                decimal_fractions.append(fraction)
        if decimal_indices:
            self._decimal.add_many(decimal_indices, decimal_fractions)
            self.counter.touch(len(decimal_indices))

        self._inter_dirty = True
        self._np_cache = None
        if self.auto_rebuild:
            self.rebuild()

    def delete_many(self, candidates) -> None:
        """Delete a slice of neighbours with one deferred rebuild.

        Deletions replay the Figure 6 delete-and-swap workflow in slice
        order — the stored state is identical to repeated :meth:`delete`
        calls — as one tight loop with the radix decomposition inlined and
        without per-operation cost-model accounting (the batched pipeline
        accounts whole phases instead).  The inter-group rebuild runs once
        at the end when ``auto_rebuild`` is set, not once per element.
        """
        index_of = self._index_of
        ids = self._ids
        biases = self._biases
        integer_parts = self._integer_parts
        fractions = self._fractions
        groups = self._groups
        decimal = self._decimal
        dense_kind = GroupKind.DENSE
        changed = False
        for candidate in candidates:
            candidate = int(candidate)
            if candidate not in index_of:
                raise SamplerStateError(f"candidate {candidate} not present")
            index = index_of.pop(candidate)
            integer_part = integer_parts[index]
            if integer_part:
                value = integer_part
                position = 0
                while value:
                    if value & 1:
                        # Inlined RadixGroup.remove (delete-and-swap).
                        group = groups[position]
                        group._count -= 1
                        group._np_members = None
                        if group.kind is not dense_kind:
                            slots = group.slots
                            members = group.members
                            slot = slots.pop(index)
                            last_slot = len(members) - 1
                            if slot != last_slot:
                                moved_member = members[last_slot]
                                members[slot] = moved_member
                                slots[moved_member] = slot
                            members.pop()
                    value >>= 1
                    position += 1
            if fractions[index]:
                decimal.remove(index)
            last = len(ids) - 1
            if index != last:
                moved_id = ids[last]
                moved_integer = integer_parts[last]
                moved_fraction = fractions[last]
                ids[index] = moved_id
                biases[index] = biases[last]
                integer_parts[index] = moved_integer
                fractions[index] = moved_fraction
                index_of[moved_id] = index
                if moved_integer:
                    value = moved_integer
                    position = 0
                    while value:
                        if value & 1:
                            # Inlined RadixGroup.rename (re-point the moved
                            # neighbour's slot).
                            group = groups[position]
                            if group.kind is not dense_kind:
                                slots = group.slots
                                slot = slots.pop(last)
                                group.members[slot] = index
                                slots[index] = slot
                                group._np_members = None
                        value >>= 1
                        position += 1
                if moved_fraction:
                    decimal.rename(last, index)
            ids.pop()
            biases.pop()
            integer_parts.pop()
            fractions.pop()
            changed = True
        if changed:
            self._inter_dirty = True
            self._np_cache = None
            if self.auto_rebuild:
                # Scalar delete() rebuilds unconditionally, including down to
                # an empty candidate set (which leaves an empty inter table).
                self.rebuild()

    def delete(self, candidate: int) -> None:
        """Delete a neighbour with the Figure 6 delete-and-swap workflow."""
        if candidate not in self._index_of:
            raise SamplerStateError(f"candidate {candidate} not present")
        index = self._index_of.pop(candidate)
        integer_part = self._integer_parts[index]
        fraction = self._fractions[index]

        # Step (i)/(ii)/(iii): locate and swap-remove from every contributing group.
        if integer_part:
            for position in decompose_bias(integer_part):
                self._groups[position].remove(index, self.counter)
        if fraction:
            self._decimal.remove(index)
            self.counter.touch(1)

        # Keep the neighbour list compact: relocate the tail into the hole and
        # re-point every group referencing the relocated neighbour (O(K)).
        last = len(self._ids) - 1
        if index != last:
            moved_id = self._ids[last]
            moved_integer = self._integer_parts[last]
            moved_fraction = self._fractions[last]
            self._ids[index] = moved_id
            self._biases[index] = self._biases[last]
            self._integer_parts[index] = moved_integer
            self._fractions[index] = moved_fraction
            self._index_of[moved_id] = index
            if moved_integer:
                for position in decompose_bias(moved_integer):
                    self._groups[position].rename(last, index, self.counter)
            if moved_fraction:
                self._decimal.rename(last, index)
            self.counter.touch(4)
        self._ids.pop()
        self._biases.pop()
        self._integer_parts.pop()
        self._fractions.pop()
        self.counter.touch(2)

        self._inter_dirty = True
        self._np_cache = None
        if self.auto_rebuild:
            self.rebuild()

    def update_bias(self, candidate: int, bias: float) -> None:
        """Change a neighbour's bias (delete + insert, both O(K))."""
        previous_mode = self.auto_rebuild
        self.auto_rebuild = False
        try:
            self.delete(candidate)
            self.insert(candidate, bias)
        finally:
            self.auto_rebuild = previous_mode
        if self.auto_rebuild:
            self.rebuild()

    # ------------------------------------------------------------------ #
    # rebuild: reclassify groups + refresh the inter-group alias table
    # ------------------------------------------------------------------ #
    def rebuild(self) -> None:
        """Reclassify group representations and rebuild the inter-group table.

        Both steps are O(K) except for group-type conversions out of the
        dense representation, which require an O(d) scan of the neighbour
        bias array (the paper performs those in the dedicated rebuild phase
        of the batched workflow; streaming updates rarely trigger them).
        """
        self.rebuild_count += 1
        degree = len(self._ids)
        for group in self._groups.values():
            new_kind = self.classifier.classify(len(group), degree)
            if self.conversion_tracker is not None and len(group) > 0:
                self.conversion_tracker.observe(group.kind, new_kind)
            if new_kind is not group.kind:
                group.convert(
                    new_kind,
                    integer_parts=self._integer_parts,
                    counter=self.counter,
                )

        inter = AliasTable(rng=self._rng, counter=self.counter)
        for position, group in self._groups.items():
            weight = group.weight()
            if weight > 0:
                inter.insert(position, float(weight))
        decimal_weight = self._decimal.weight()
        if decimal_weight > 0 and len(self._decimal) > 0:
            inter.insert(DECIMAL_GROUP_KEY, decimal_weight)
        if len(inter) > 0:
            inter.rebuild()
        self._inter_group = inter
        self._inter_dirty = False
        self._np_cache = None

    def _group_for(self, position: int) -> RadixGroup:
        group = self._groups.get(position)
        if group is None:
            group = RadixGroup(position, GroupKind.REGULAR)
            self._groups[position] = group
        return group

    # ------------------------------------------------------------------ #
    # sampling (Table 1: O(1))
    # ------------------------------------------------------------------ #
    def sample(self) -> int:
        """Hierarchical sampling: inter-group alias draw, then intra-group uniform draw."""
        if not self._ids:
            raise EmptySamplerError("Bingo vertex sampler holds no candidates")
        if self._inter_dirty:
            self.rebuild()
        key = self._inter_group.sample()
        if key == DECIMAL_GROUP_KEY:
            index = self._decimal.sample(self._rng, counter=self.counter)
        else:
            index = self._groups[key].sample(
                self._rng,
                integer_parts=self._integer_parts,
                counter=self.counter,
            )
        self.counter.touch(1)
        return self._ids[index]

    def sample_many(self, count: int, rng: NumpySource = None) -> np.ndarray:
        """Draw ``count`` candidates at once through the two-stage hierarchy.

        The whole batch resolves in a handful of vectorized operations: one
        fused inter-group alias draw (bucket + toss vectors against the
        cached prob/alias arrays), then one gather into a flattened
        member table holding every group's members contiguously, indexed by
        a single intra-group uniform vector.  Only draws landing in the
        decimal group fall back to its (vectorized) rejection loop.  The
        flattened table is rebuilt lazily after a structural change, so the
        amortized per-draw work matches :meth:`sample` — this is the kernel
        the batched walk frontier runs on.
        """
        if not self._ids:
            raise EmptySamplerError("Bingo vertex sampler holds no candidates")
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        if self._inter_dirty:
            self.rebuild()
        generator = ensure_np_rng(rng)
        ids, lut, flat, offsets, sizes = self._batch_cache()
        group_ids, prob, alias = self._inter_group.numpy_tables()

        uniforms = generator.random(3 * count)
        self.counter.draw(3 * count)
        self.counter.compare(2 * count)
        self.counter.touch(3 * count)
        # Inter-group alias draw: floor(u * n) is the uniform bucket.
        buckets = (uniforms[:count] * len(group_ids)).astype(np.int64)
        chosen = np.where(
            uniforms[count : 2 * count] < prob[buckets], buckets, alias[buckets]
        )
        keys = group_ids[chosen]
        slots = lut[keys + 1]

        # Intra-group uniform member pick through the flattened member table.
        intra = uniforms[2 * count :]
        positions = offsets[slots] + np.minimum(
            (intra * sizes[slots]).astype(np.int64), sizes[slots] - 1
        )
        indices = flat[positions]
        decimal_mask = keys == DECIMAL_GROUP_KEY
        if decimal_mask.any():
            indices[decimal_mask] = self._decimal.sample_batch(
                int(decimal_mask.sum()), generator, counter=self.counter
            )
        return ids[indices]

    def _batch_cache(self) -> tuple[np.ndarray, ...]:
        """Lazily (re)build the NumPy mirrors used by :meth:`sample_many`.

        ``flat`` concatenates every weighted group's member indices (dense
        groups are materialised by scanning the integer bias array — the
        same O(d) the paper's batched rebuild phase pays); ``offsets`` and
        ``sizes`` delimit each group's slice, and ``lut`` maps a group key
        (shifted by one so the decimal group's -1 fits) to its slice slot.
        The decimal group keeps a sentinel slice of size 1 — its draws are
        overwritten by the rejection kernel.
        """
        if self._np_cache is not None:
            return self._np_cache
        keys = [key for key, _ in self._inter_group.candidates()]
        lut = np.full(max(keys, default=0) + 2, -1, dtype=np.int64)
        flat_parts: list[np.ndarray] = []
        offsets = np.zeros(len(keys), dtype=np.int64)
        sizes = np.ones(len(keys), dtype=np.int64)
        cursor = 0
        for slot, key in enumerate(keys):
            lut[key + 1] = slot
            if key == DECIMAL_GROUP_KEY:
                members = np.zeros(1, dtype=np.int64)
            else:
                members = np.asarray(
                    self._groups[key].member_list(self._integer_parts), dtype=np.int64
                )
            flat_parts.append(members)
            offsets[slot] = cursor
            sizes[slot] = len(members)
            cursor += len(members)
        flat = (
            np.concatenate(flat_parts) if flat_parts else np.empty(0, dtype=np.int64)
        )
        self._np_cache = (
            np.asarray(self._ids, dtype=np.int64),
            lut,
            flat,
            offsets,
            sizes,
        )
        return self._np_cache

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._ids)

    def candidates(self) -> list[tuple[int, float]]:
        return list(zip(self._ids, self._biases))

    def total_bias(self) -> float:
        return float(sum(self._biases))

    def contains(self, candidate: int) -> bool:
        return candidate in self._index_of

    def bias_of(self, candidate: int) -> float:
        """The stored (original, unscaled) bias of a neighbour."""
        if candidate not in self._index_of:
            raise SamplerStateError(f"candidate {candidate} not present")
        return self._biases[self._index_of[candidate]]

    def num_groups(self) -> int:
        """Number of non-empty radix groups (excluding the decimal group)."""
        return sum(1 for group in self._groups.values() if len(group) > 0)

    def group_sizes(self) -> dict[int, int]:
        """Bit position -> member count for every non-empty group."""
        return {pos: len(group) for pos, group in self._groups.items() if len(group) > 0}

    def group_kinds(self) -> dict[int, GroupKind]:
        """Bit position -> current representation for every non-empty group."""
        return {pos: group.kind for pos, group in self._groups.items() if len(group) > 0}

    def decimal_group_size(self) -> int:
        """Number of neighbours with a fractional sub-bias."""
        return len(self._decimal)

    def decimal_share(self) -> float:
        """W_D / (W_I + W_D) — the quantity λ is chosen to keep below 1/d."""
        integer_weight = float(sum(group.weight() for group in self._groups.values()))
        decimal_weight = self._decimal.weight()
        total = integer_weight + decimal_weight
        return decimal_weight / total if total > 0 else 0.0

    def structure_probability(self, candidate: int) -> float:
        """Selection probability implied by the group structure (Equation 7).

        Tests compare this against ``bias / total_bias`` to verify
        Theorem 4.1 without Monte Carlo noise.
        """
        if candidate not in self._index_of:
            return 0.0
        index = self._index_of[candidate]
        integer_weight = float(sum(group.weight() for group in self._groups.values()))
        decimal_weight = self._decimal.weight()
        total = integer_weight + decimal_weight
        if total <= 0:
            return 0.0
        contribution = 0.0
        integer_part = self._integer_parts[index]
        if integer_part:
            for position in decompose_bias(integer_part):
                group = self._groups[position]
                group_weight = float(group.weight())
                if group_weight <= 0:
                    continue
                # P(group) * P(index | group) = (W_k / total) * (1 / |G_k|)
                contribution += (group_weight / total) * (1.0 / len(group))
        fraction = self._fractions[index]
        if fraction and decimal_weight > 0:
            contribution += (decimal_weight / total) * (fraction / decimal_weight)
        return contribution

    def memory_report(self) -> MemoryReport:
        """Modelled memory footprint of this vertex's sampling state."""
        return vertex_memory_bytes(
            self.group_sizes(),
            self.group_kinds(),
            len(self._ids),
            decimal_members=len(self._decimal),
        )

    def memory_bytes(self) -> int:
        return self.memory_report().total_bytes()

    def check_invariants(self) -> None:
        """Raise :class:`SamplerStateError` if internal structures disagree.

        Verified invariants:

        * every list-backed group's inverted index is the exact inverse of its
          member list;
        * group sizes match the number of neighbours whose scaled bias has the
          corresponding bit set;
        * the decimal group holds exactly the neighbours with a fractional
          residue;
        * the id -> index map matches the neighbour array.
        """
        degree = len(self._ids)
        for candidate, index in self._index_of.items():
            if not (0 <= index < degree) or self._ids[index] != candidate:
                raise SamplerStateError("id->index map inconsistent with neighbour array")
        for position, group in self._groups.items():
            mask = 1 << position
            expected = [i for i in range(degree) if self._integer_parts[i] & mask]
            if len(group) != len(expected):
                raise SamplerStateError(
                    f"group 2^{position} size {len(group)} != expected {len(expected)}"
                )
            if not group.is_dense():
                if sorted(group.members) != expected:
                    raise SamplerStateError(f"group 2^{position} membership mismatch")
                for member, slot in group.slots.items():
                    if group.members[slot] != member:
                        raise SamplerStateError(
                            f"group 2^{position} inverted index mismatch at {member}"
                        )
        expected_decimal = {i for i in range(degree) if self._fractions[i] > 0.0}
        if set(self._decimal.fractions.keys()) != expected_decimal:
            raise SamplerStateError("decimal group membership mismatch")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BingoVertexSampler(degree={len(self._ids)}, groups={self.num_groups()}, "
            f"lam={self.lam})"
        )


def rebuild_samplers_batch(samplers: Iterable[BingoVertexSampler]) -> None:
    """Rebuild many samplers at once (the batched form of :meth:`rebuild`).

    This is the rebuild phase of the Section 5.2 batched-update workflow run
    as two vectorized passes over every touched vertex:

    1. group reclassification — one :meth:`GroupClassifier.classify_many`
       call over all (group, vertex) pairs, with conversions and
       conversion-tracker updates applied only where the representation
       actually changes;
    2. inter-group alias construction — one :func:`batch_vose` call building
       every vertex's alias table simultaneously.

    The resulting per-sampler state (group kinds, tracker counts, alias
    arrays, dirtiness flags) is identical to calling :meth:`rebuild` on each
    sampler, so batched and streaming ingestion stay interchangeable.
    Per-operation cost-model accounting is skipped (the batched pipeline
    accounts whole phases instead).
    """
    from repro.core.batch_rebuild import batch_vose

    batch = samplers if isinstance(samplers, list) else list(samplers)
    if not batch:
        return

    # One pass per sampler: inline reclassification (same decision tree as
    # GroupClassifier.classify) + weight collection for the alias rows.
    key_rows: list[list[int]] = []
    weight_rows: list[list[float]] = []
    regular = GroupKind.REGULAR
    one_element = GroupKind.ONE_ELEMENT
    dense = GroupKind.DENSE
    sparse = GroupKind.SPARSE
    for sampler in batch:
        sampler.rebuild_count += 1
        classifier = sampler.classifier
        adaptive = classifier.adaptive
        alpha = classifier.alpha_percent
        beta = classifier.beta_percent
        tracker = sampler.conversion_tracker
        degree = len(sampler._ids)
        keys: list[int] = []
        weights: list[float] = []
        for position, group in sampler._groups.items():
            size = group._count
            if size == 0 or degree <= 0 or not adaptive:
                new_kind = regular
            elif size == 1:
                new_kind = one_element
            else:
                ratio = 100.0 * size / degree
                if ratio > alpha:
                    new_kind = dense
                elif ratio < beta:
                    new_kind = sparse
                else:
                    new_kind = regular
            if size:
                old_kind = group.kind
                if tracker is not None:
                    tracker.observations += 1
                    if old_kind is not new_kind:
                        transitions = tracker.transitions
                        pair = (old_kind, new_kind)
                        transitions[pair] = transitions.get(pair, 0) + 1
                if old_kind is not new_kind:
                    # Inlined RadixGroup.convert: only transitions out of the
                    # dense representation need the O(d) member rediscovery.
                    if old_kind is dense:
                        group.convert(
                            new_kind,
                            integer_parts=sampler._integer_parts,
                            counter=sampler.counter,
                        )
                    else:
                        if new_kind is dense:
                            group.members = []
                            group.slots = {}
                        group._np_members = None
                        group.kind = new_kind
                keys.append(position)
                weights.append(float(size << position))
            elif group.kind is not new_kind:
                group.convert(
                    new_kind,
                    integer_parts=sampler._integer_parts,
                    counter=sampler.counter,
                )
        decimal = sampler._decimal
        decimal_weight = decimal.weight()
        if decimal_weight > 0 and len(decimal.fractions) > 0:
            keys.append(DECIMAL_GROUP_KEY)
            weights.append(decimal_weight)
        key_rows.append(keys)
        weight_rows.append(weights)

    # Batched Vose: every touched vertex's inter-group table in one kernel,
    # then adopted per sampler without re-running the scalar construction.
    tables = batch_vose(weight_rows)
    for sampler, keys, weights, (prob, alias) in zip(
        batch, key_rows, weight_rows, tables
    ):
        sampler._inter_group = AliasTable.from_built(
            keys, weights, prob, alias, rng=sampler._rng, counter=sampler.counter
        )
        sampler._inter_dirty = False
        sampler._np_cache = None
