"""Radix-based bias decomposition (Section 4.1) and floating-point handling (4.3).

The transformation at the heart of Bingo: every integer bias ``w`` is split
into the powers of two present in its binary representation,

    D(w) = { 2^k  |  w & 2^k != 0 },                      (Eq. 3)

and the sub-biases of all neighbours sharing bit position ``k`` are pooled
into radix group ``p_k`` whose total weight is

    W(p_k) = Σ_i (w_i & 2^k) = |G_k| * 2^k.               (Eq. 4)

Within one group every member carries the identical sub-bias ``2^k``, so
intra-group sampling is uniform and the only biased choice left is *which
group*, a set of at most ``K = ceil(log2(max_bias)) + 1`` alternatives.

Floating-point biases are handled by multiplying by an amortization factor
λ, radix-decomposing the integer part and pooling the leftover fractional
parts into one extra *decimal group* (Section 4.3).  λ is chosen so the
decimal group's share of total weight stays below ``1/d``, preserving O(1)
expected sampling time.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.errors import InvalidBiasError
from repro.utils.validation import check_bias

#: Upper bound on the number of radix groups (64-bit biases).
MAX_GROUPS = 64

#: Default amortization factor search cap (λ = 10^6 resolves micro-biases).
MAX_AMORTIZATION_EXPONENT = 6


def popcount(value: int) -> int:
    """Number of set bits in ``value`` — the number of groups a bias joins."""
    if value < 0:
        raise ValueError("popcount is only defined for non-negative integers")
    return bin(value).count("1")


def decompose_bias(bias: int) -> list[int]:
    """Equation (3): the bit positions ``k`` with ``bias & 2^k != 0``.

    Returns the positions (not the powers), sorted ascending, e.g.
    ``decompose_bias(5) == [0, 2]`` because ``5 = 2^0 + 2^2``.
    """
    if isinstance(bias, bool) or not isinstance(bias, int):
        raise InvalidBiasError(bias)
    if bias <= 0:
        raise InvalidBiasError(bias)
    positions = []
    value = bias
    position = 0
    while value:
        if value & 1:
            positions.append(position)
        value >>= 1
        position += 1
    return positions


def num_groups_for_bias(max_bias: int) -> int:
    """K, the number of radix groups needed for biases up to ``max_bias``."""
    if max_bias <= 0:
        raise InvalidBiasError(max_bias)
    return max_bias.bit_length()


def group_weights(biases: Sequence[int]) -> dict[int, int]:
    """Equation (4): total sub-bias per radix group for a bias multiset.

    Returns a mapping ``bit position -> W(p_k)``; positions whose group would
    be empty are omitted.
    """
    counts: dict[int, int] = {}
    for bias in biases:
        for position in decompose_bias(int(bias)):
            counts[position] = counts.get(position, 0) + 1
    return {position: count * (1 << position) for position, count in counts.items()}


def split_scaled_bias(bias: float, lam: float) -> tuple[int, float]:
    """Split ``bias * lam`` into (integer part, fractional part).

    The integer part feeds the radix groups; the fractional part goes to the
    decimal group.  Values whose fraction is negligibly small (absolute
    tolerance 1e-9 relative to the scaled bias) are snapped to integers so
    integer workloads never populate the decimal group.
    """
    check_bias(bias)
    if lam <= 0:
        raise ValueError("amortization factor must be positive")
    scaled = bias * lam
    integer_part = int(math.floor(scaled))
    fraction = scaled - integer_part
    tolerance = 1e-9 * max(1.0, scaled)
    if fraction <= tolerance:
        fraction = 0.0
    elif fraction >= 1.0 - tolerance:
        integer_part += 1
        fraction = 0.0
    return integer_part, fraction


def split_scaled_biases(biases, lam: float):
    """Vectorized :func:`split_scaled_bias` over a whole bias slice.

    Returns ``(integer_parts, fractions)`` as Python lists, elementwise
    identical to calling the scalar function on each bias — including the
    branch precedence of the tolerance snapping (snap-down to an integer is
    checked *before* snap-up, which matters once the scaled bias is large
    enough that the two tolerance windows overlap).  Invalid biases
    (non-positive / non-finite) raise :class:`InvalidBiasError`.
    """
    import numpy as np

    if lam <= 0:
        raise ValueError("amortization factor must be positive")
    bias_array = np.ascontiguousarray(biases, dtype=np.float64)
    finite = np.isfinite(bias_array)
    if not finite.all() or (bias_array[finite] <= 0).any():
        check_bias(float(bias_array[~(finite & (bias_array > 0))][0]))
    scaled = bias_array * lam
    integer_parts = np.floor(scaled)
    fractions = scaled - integer_parts
    tolerance = 1e-9 * np.maximum(1.0, scaled)
    snap_down = fractions <= tolerance
    snap_up = ~snap_down & (fractions >= 1.0 - tolerance)
    integer_parts[snap_up] += 1.0
    fractions[snap_down | snap_up] = 0.0
    return integer_parts.astype(np.int64).tolist(), fractions.tolist()


def choose_amortization_factor(
    biases: Sequence[float],
    *,
    max_exponent: int = MAX_AMORTIZATION_EXPONENT,
) -> float:
    """Pick λ = 10^m (smallest m) so the decimal group stays negligible.

    The paper requires ``W_D / (W_I + W_D) < 1/d`` so that the expected
    intra-group work remains O(1) even though the decimal group falls back to
    ITS / rejection sampling.  The search walks m = 0, 1, 2, ... and returns
    the first power of ten satisfying the criterion, or ``10^max_exponent``
    if none does (the benchmarks then still run, just with a slightly larger
    decimal share).
    """
    cleaned = [check_bias(b) for b in biases]
    if not cleaned:
        return 1.0
    degree = len(cleaned)
    for exponent in range(max_exponent + 1):
        lam = 10.0 ** exponent
        integer_weight = 0.0
        decimal_weight = 0.0
        for bias in cleaned:
            integer_part, fraction = split_scaled_bias(bias, lam)
            integer_weight += integer_part
            decimal_weight += fraction
        total = integer_weight + decimal_weight
        if total <= 0:
            continue
        if decimal_weight == 0.0 or decimal_weight / total < 1.0 / degree:
            return lam
    return 10.0 ** max_exponent


def exact_group_probability(biases: Sequence[int], position: int) -> float:
    """P(p_k) from Equation (5) for the given bias multiset."""
    weights = group_weights(biases)
    total = sum(weights.values())
    if total == 0:
        return 0.0
    return weights.get(position, 0) / total


def exact_selection_probability(biases: Sequence[int], index: int) -> float:
    """P(v_i) recovered through the factorization (Equation 7 / 8).

    Used by tests to confirm Theorem 4.1: the reconstructed probability must
    equal ``w_i / Σ w`` exactly.
    """
    weights = group_weights(biases)
    total = sum(weights.values())
    if total == 0:
        return 0.0
    bias = int(biases[index])
    probability = 0.0
    for position in weights:
        sub_bias = bias & (1 << position)
        if sub_bias:
            # P(p_k) * P(v_i | p_k) = (W_k / total) * (2^k / W_k) = 2^k / total
            probability += sub_bias / total
    return probability
