"""Batched construction of many small alias tables in one vectorized pass.

The batched-update workflow (Section 5.2) ends with one inter-group alias
rebuild per touched vertex.  Each table is tiny (K ≤ ~15 groups), so the
per-table cost of the scalar Vose construction is pure Python overhead; with
thousands of touched vertices per batch it dominates ingestion.  This module
runs Vose's algorithm for *all* touched vertices simultaneously on padded
2-D arrays: every iteration of the (at most K-step) loop finalizes one
entry per still-active row with a fixed number of NumPy operations.

The implementation replicates the scalar
:meth:`repro.sampling.alias.AliasTable.rebuild` *bitwise*: the same
left-to-right total (``np.cumsum`` accumulates sequentially, exactly like
the scalar ``sum``), the same elementwise scaling, the same
ascending-position stack initialisation, and the same pop/push order — so a
table built here is indistinguishable from one built by the scalar path,
and seeded sampling draws through either are identical.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def batch_vose(
    weight_rows: Sequence[Sequence[float]],
) -> list[tuple[list[float], list[int]]]:
    """Build one alias table per weight row, all rows at once.

    Parameters
    ----------
    weight_rows:
        One sequence of positive weights per table.  Rows may have
        different lengths; empty rows yield empty tables.

    Returns
    -------
    A list aligned with ``weight_rows``; each element is the ``(prob,
    alias)`` pair the scalar Vose construction would produce for that row.
    """
    num_rows = len(weight_rows)
    if num_rows == 0:
        return []
    lengths = np.fromiter((len(row) for row in weight_rows), dtype=np.int64, count=num_rows)
    width = int(lengths.max()) if num_rows else 0
    if width == 0:
        return [([], []) for _ in weight_rows]

    weights = np.zeros((num_rows, width), dtype=np.float64)
    for row_index, row in enumerate(weight_rows):
        if len(row):
            weights[row_index, : len(row)] = row
    columns = np.arange(width, dtype=np.int64)
    valid = columns[None, :] < lengths[:, None]

    # Sequential per-row totals (cumsum accumulates left to right, exactly
    # like the scalar ``sum`` over the bias list; trailing zero padding is
    # exact under IEEE addition).
    totals = np.cumsum(weights, axis=1)[:, -1]
    safe_totals = np.where(totals > 0, totals, 1.0)
    scaled = weights * lengths[:, None].astype(np.float64) / safe_totals[:, None]

    prob = np.ones((num_rows, width), dtype=np.float64)
    alias = np.broadcast_to(columns, (num_rows, width)).copy()

    # Stack initialisation: positions in ascending order, partitioned by
    # scaled < 1 — identical to the scalar scan-and-append.
    is_small = (scaled < 1.0) & valid
    is_large = ~is_small & valid
    small_stack = np.zeros((num_rows, width), dtype=np.int64)
    large_stack = np.zeros((num_rows, width), dtype=np.int64)
    small_count = is_small.sum(axis=1)
    large_count = is_large.sum(axis=1)
    rows, cols = np.nonzero(is_small)
    ranks = np.cumsum(is_small, axis=1)
    small_stack[rows, ranks[rows, cols] - 1] = cols
    rows, cols = np.nonzero(is_large)
    ranks = np.cumsum(is_large, axis=1)
    large_stack[rows, ranks[rows, cols] - 1] = cols

    # The pop/push loop runs on flattened views (row * width + col): 1-D
    # gathers and scatters are markedly cheaper than 2-D pair indexing, and
    # the loop body is the hot path of the whole batched rebuild.
    flat_scaled = scaled.reshape(-1)
    flat_prob = prob.reshape(-1)
    flat_alias = alias.reshape(-1)
    flat_small = small_stack.reshape(-1)
    flat_large = large_stack.reshape(-1)
    live = np.nonzero((small_count > 0) & (large_count > 0))[0]
    while len(live):
        base = live * width
        small_counts = small_count[live] - 1
        large_counts = large_count[live] - 1
        small_top = flat_small[base + small_counts]
        large_top = flat_large[base + large_counts]
        small_count[live] = small_counts
        large_count[live] = large_counts
        small_flat = base + small_top
        large_flat = base + large_top
        small_scaled = flat_scaled[small_flat]
        flat_prob[small_flat] = small_scaled
        flat_alias[small_flat] = large_top
        updated = flat_scaled[large_flat] + small_scaled - 1.0
        flat_scaled[large_flat] = updated
        goes_small = updated < 1.0
        to_small = live[goes_small]
        to_large = live[~goes_small]
        flat_small[to_small * width + small_count[to_small]] = large_top[goes_small]
        small_count[to_small] += 1
        flat_large[to_large * width + large_count[to_large]] = large_top[~goes_small]
        large_count[to_large] += 1
        still = (small_count[live] > 0) & (large_count[live] > 0)
        live = live[still]

    # Entries still on either stack keep prob = 1.0 and their initial alias,
    # matching the scalar tail loop.
    results: list[tuple[list[float], list[int]]] = []
    for row_index, row in enumerate(weight_rows):
        count = len(row)
        results.append(
            (prob[row_index, :count].tolist(), alias[row_index, :count].tolist())
        )
    return results
