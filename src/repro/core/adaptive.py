"""Adaptive group representation: classification and conversion tracking (Section 5.1).

Equation (9) assigns every radix group one of four representations based on
its cardinality relative to the vertex degree:

* **dense** — |G| / d > α% (default α = 40): keep only a member *count*; no
  intra-group neighbour list, no inverted index.  Intra-group sampling falls
  back to rejection over the original neighbour list with the group radix as
  the acceptance mask (rejection rate below 1 − α%).
* **one-element** — |G| = 1: store the single member inline.
* **sparse** — |G| / d < β% (default β = 10) and |G| ≠ 1: compact member list
  plus a small inverted map (instead of a full d-sized inverted index).
* **regular** — everything else: full member list and a d-sized inverted
  index, as in the baseline design.

The classifier is pure; the group structures in :mod:`repro.core.groups`
carry their current :class:`GroupKind` and the vertex sampler asks the
classifier when (re)building.  :class:`ConversionTracker` records group-type
transitions for the Table 4 experiment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

#: Paper defaults ("Based on our heuristic study, we set α = 40 and β = 10").
DEFAULT_ALPHA_PERCENT = 40.0
DEFAULT_BETA_PERCENT = 10.0


class GroupKind(str, enum.Enum):
    """The four group representations of Equation (9)."""

    DENSE = "dense"
    ONE_ELEMENT = "one-element"
    SPARSE = "sparse"
    REGULAR = "regular"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class GroupClassifier:
    """Pure classifier implementing Equation (9).

    Parameters
    ----------
    alpha_percent:
        Density threshold α (percent of the vertex degree above which a group
        is *dense*).
    beta_percent:
        Sparsity threshold β (percent of the vertex degree below which a
        group is *sparse*).
    adaptive:
        When ``False`` every non-empty group is classified as *regular* — the
        "BS" (baseline) configuration of Figures 11 and 13.
    """

    alpha_percent: float = DEFAULT_ALPHA_PERCENT
    beta_percent: float = DEFAULT_BETA_PERCENT
    adaptive: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.beta_percent <= self.alpha_percent <= 100:
            raise ValueError(
                "thresholds must satisfy 0 < beta <= alpha <= 100, got "
                f"alpha={self.alpha_percent}, beta={self.beta_percent}"
            )

    def classify(self, group_size: int, degree: int) -> GroupKind:
        """Classify a group of ``group_size`` members at a vertex of ``degree``."""
        if group_size < 0:
            raise ValueError("group_size must be non-negative")
        if degree <= 0 or group_size == 0:
            # An empty group has no representation cost; call it regular so
            # callers do not need a fifth category.
            return GroupKind.REGULAR
        if not self.adaptive:
            return GroupKind.REGULAR
        ratio = 100.0 * group_size / degree
        if group_size == 1:
            return GroupKind.ONE_ELEMENT
        if ratio > self.alpha_percent:
            return GroupKind.DENSE
        if ratio < self.beta_percent:
            return GroupKind.SPARSE
        return GroupKind.REGULAR


@dataclass
class ConversionTracker:
    """Counts group-type transitions (Table 4: "Group conversion ratio").

    ``transitions[(old, new)]`` counts the number of times a group changed
    representation from ``old`` to ``new`` during update processing;
    ``observations`` counts every classification check, so ratios can be
    reported the way the paper does (e.g. "the highest conversion rate is
    less than 0.47%").
    """

    transitions: dict[tuple[GroupKind, GroupKind], int] = field(default_factory=dict)
    observations: int = 0

    def observe(self, old: GroupKind, new: GroupKind) -> None:
        """Record one reclassification of a group (old may equal new)."""
        self.observations += 1
        if old is not new:
            key = (old, new)
            self.transitions[key] = self.transitions.get(key, 0) + 1

    def conversion_count(self) -> int:
        """Total number of actual representation changes."""
        return sum(self.transitions.values())

    def conversion_ratio(self, old: GroupKind, new: GroupKind) -> float:
        """Fraction of observations that converted ``old`` -> ``new``."""
        if self.observations == 0:
            return 0.0
        return self.transitions.get((old, new), 0) / self.observations

    def ratio_matrix(self) -> dict[GroupKind, dict[GroupKind, float]]:
        """Full old -> new conversion-ratio matrix (Table 4 layout)."""
        matrix: dict[GroupKind, dict[GroupKind, float]] = {}
        for old in GroupKind:
            matrix[old] = {}
            for new in GroupKind:
                if old is new:
                    continue
                matrix[old][new] = self.conversion_ratio(old, new)
        return matrix

    def merge(self, other: ConversionTracker) -> None:
        """Fold another tracker's counts into this one."""
        self.observations += other.observations
        for key, count in other.transitions.items():
            self.transitions[key] = self.transitions.get(key, 0) + count
