"""Bingo core: radix-based bias factorization (the paper's primary contribution).

Public surface:

* :func:`~repro.core.radix.decompose_bias` /
  :func:`~repro.core.radix.group_weights` — Equations (3) and (4).
* :class:`~repro.core.vertex_sampler.BingoVertexSampler` — the per-vertex
  hierarchical sampler (inter-group alias table + intra-group uniform
  sampling) with O(1) sampling and O(K) insertion/deletion, including the
  floating-point bias path (Section 4.3) and the adaptive group
  representation (Section 5.1).
* :class:`~repro.core.adaptive.GroupClassifier` — Equation (9) and the
  group-type conversion statistics of Table 4.
* :class:`~repro.core.arbitrary_radix.ArbitraryRadixSampler` — radix bases
  larger than 2 with inter-subgroup alias tables (Section 9.2).
* :mod:`~repro.core.memory_model` — the byte-level accounting behind the
  Figure 11 memory comparison (baseline vs. group adaption).
"""

from repro.core.radix import (
    decompose_bias,
    group_weights,
    num_groups_for_bias,
    popcount,
    choose_amortization_factor,
    split_scaled_bias,
)
from repro.core.adaptive import GroupKind, GroupClassifier, ConversionTracker
from repro.core.groups import RadixGroup
from repro.core.vertex_sampler import BingoVertexSampler
from repro.core.arbitrary_radix import ArbitraryRadixSampler
from repro.core.memory_model import (
    MemoryReport,
    group_memory_bytes,
    vertex_memory_bytes,
)

__all__ = [
    "decompose_bias",
    "group_weights",
    "num_groups_for_bias",
    "popcount",
    "choose_amortization_factor",
    "split_scaled_bias",
    "GroupKind",
    "GroupClassifier",
    "ConversionTracker",
    "RadixGroup",
    "BingoVertexSampler",
    "ArbitraryRadixSampler",
    "MemoryReport",
    "group_memory_bytes",
    "vertex_memory_bytes",
]
