"""Immutable CSR (compressed sparse row) snapshots of a dynamic graph.

The static baselines (KnightKing-style alias engines, gSampler-style ITS
engines, FlowWalker-style reservoir engines) rebuild their sampling state from
a frozen snapshot after every update round, exactly as the paper describes
("we reload or reconstruct the corresponding structure after each round of
updates").  The CSR form gives them a compact, cache-friendly substrate.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import VertexNotFoundError
from repro.graph.dynamic_graph import DynamicGraph, Edge


class CSRGraph:
    """A read-only CSR view of a weighted directed graph.

    Attributes
    ----------
    offsets:
        ``int64`` array of length ``num_vertices + 1``; the out-edges of
        vertex ``v`` live in ``[offsets[v], offsets[v + 1])``.
    targets:
        ``int64`` array of destination vertices.
    biases:
        ``float64`` array of edge biases aligned with ``targets``.
    """

    __slots__ = ("offsets", "targets", "biases")

    def __init__(
        self,
        offsets: Sequence[int],
        targets: Sequence[int],
        biases: Sequence[float],
    ) -> None:
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.targets = np.asarray(targets, dtype=np.int64)
        self.biases = np.asarray(biases, dtype=np.float64)
        if self.offsets.ndim != 1 or self.offsets.size == 0:
            raise ValueError("offsets must be a non-empty 1-D sequence")
        if self.targets.shape != self.biases.shape:
            raise ValueError("targets and biases must have matching shapes")
        if int(self.offsets[-1]) != self.targets.size:
            raise ValueError("offsets[-1] must equal the number of stored arcs")

    # ------------------------------------------------------------------ #
    @classmethod
    def from_dynamic(cls, graph: DynamicGraph) -> CSRGraph:
        """Snapshot a :class:`DynamicGraph` into CSR form."""
        offsets: list[int] = [0]
        targets: list[int] = []
        biases: list[float] = []
        for vertex in range(graph.num_vertices):
            for edge in graph.out_edges(vertex):
                targets.append(edge.dst)
                biases.append(float(edge.bias))
            offsets.append(len(targets))
        return cls(offsets, targets, biases)

    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices in the snapshot."""
        return int(self.offsets.size - 1)

    @property
    def num_arcs(self) -> int:
        """Number of stored directed arcs."""
        return int(self.targets.size)

    def _check_vertex(self, vertex: int) -> None:
        if not (0 <= vertex < self.num_vertices):
            raise VertexNotFoundError(vertex)

    def degree(self, vertex: int) -> int:
        """Out-degree of ``vertex``."""
        self._check_vertex(vertex)
        return int(self.offsets[vertex + 1] - self.offsets[vertex])

    def neighbors(self, vertex: int) -> np.ndarray:
        """Out-neighbours of ``vertex`` as an ``int64`` array view."""
        self._check_vertex(vertex)
        return self.targets[self.offsets[vertex]: self.offsets[vertex + 1]]

    def neighbor_biases(self, vertex: int) -> np.ndarray:
        """Biases of the out-edges of ``vertex`` as a ``float64`` array view."""
        self._check_vertex(vertex)
        return self.biases[self.offsets[vertex]: self.offsets[vertex + 1]]

    def out_edges(self, vertex: int) -> Iterator[Edge]:
        """Iterate the out-edges of ``vertex``."""
        self._check_vertex(vertex)
        start, stop = int(self.offsets[vertex]), int(self.offsets[vertex + 1])
        for index in range(start, stop):
            yield Edge(vertex, int(self.targets[index]), float(self.biases[index]))

    def edges(self) -> Iterator[Edge]:
        """Iterate every stored arc."""
        for vertex in range(self.num_vertices):
            yield from self.out_edges(vertex)

    def total_bias(self, vertex: int) -> float:
        """Sum of out-edge biases of ``vertex``."""
        return float(self.neighbor_biases(vertex).sum())

    def max_degree(self) -> int:
        """Largest out-degree."""
        if self.num_vertices == 0:
            return 0
        return int(np.max(np.diff(self.offsets)))

    def average_degree(self) -> float:
        """Mean out-degree."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_arcs / self.num_vertices

    def memory_bytes(self) -> int:
        """Bytes occupied by the CSR arrays (used by the memory model)."""
        return int(self.offsets.nbytes + self.targets.nbytes + self.biases.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(vertices={self.num_vertices}, arcs={self.num_arcs})"
