"""Edge-bias generators.

Section 6.1 of the paper states that, by default, biases follow the degree of
the destination vertex (naturally power-law on real graphs), and Section 6.4
additionally evaluates Uniform, Gauss, and Power-law bias distributions and
floating-point biases obtained by adding U(0, 1) noise to integer biases.
This module provides all of those generators behind one enum-driven factory.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Sequence

from repro.utils.rng import RandomSource, ensure_rng


class BiasDistribution(str, enum.Enum):
    """Named bias distributions used in the paper's evaluation."""

    UNIFORM = "uniform"
    GAUSS = "gauss"
    POWER_LAW = "power-law"
    DEGREE = "degree"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def uniform_biases(
    count: int,
    *,
    low: int = 1,
    high: int = 64,
    rng: RandomSource = None,
) -> list[int]:
    """Integer biases drawn uniformly from ``[low, high]``."""
    generator = ensure_rng(rng)
    if low < 1:
        raise ValueError("uniform bias lower bound must be at least 1")
    if high < low:
        raise ValueError("uniform bias upper bound must be >= lower bound")
    return [generator.randint(low, high) for _ in range(count)]


def gauss_biases(
    count: int,
    *,
    mean: float = 32.0,
    stddev: float = 12.0,
    rng: RandomSource = None,
) -> list[int]:
    """Integer biases from a truncated Gaussian (values clamped to >= 1)."""
    generator = ensure_rng(rng)
    biases = []
    for _ in range(count):
        value = int(round(generator.gauss(mean, stddev)))
        biases.append(max(1, value))
    return biases


def power_law_biases(
    count: int,
    *,
    alpha: float = 2.0,
    max_bias: int = 1 << 16,
    rng: RandomSource = None,
) -> list[int]:
    """Integer biases from a bounded Pareto (power-law) distribution.

    Values are drawn from ``P(x) ∝ x^{-alpha}`` on ``[1, max_bias]`` via
    inverse-transform sampling, which produces the heavy-tailed bias profile
    real degree-derived biases exhibit.
    """
    if alpha <= 1.0:
        raise ValueError("power-law exponent alpha must be > 1")
    if max_bias < 1:
        raise ValueError("max_bias must be at least 1")
    generator = ensure_rng(rng)
    biases: list[int] = []
    exponent = 1.0 - alpha
    upper = float(max_bias) ** exponent
    for _ in range(count):
        u = generator.random()
        value = (1.0 + u * (upper - 1.0)) ** (1.0 / exponent)
        biases.append(max(1, min(max_bias, int(round(value)))))
    return biases


def degree_biases(degrees: Sequence[int]) -> list[int]:
    """Biases equal to the (destination) vertex degree, clamped to >= 1.

    This is the paper's default: "we generate the bias for most of the tests
    based on the degree of vertices".
    """
    return [max(1, int(degree)) for degree in degrees]


def add_fractional_noise(
    biases: Sequence[float],
    *,
    rng: RandomSource = None,
) -> list[float]:
    """Turn integer biases into floating-point biases by adding U(0, 1) noise.

    Mirrors the Figure 14 methodology: "the floating-point bias is the integer
    bias added with a random floating-point value between 0 - 1.00".
    """
    generator = ensure_rng(rng)
    return [float(bias) + generator.random() for bias in biases]


def make_bias_generator(
    distribution: BiasDistribution | str,
    *,
    rng: RandomSource = None,
    **params: float,
) -> Callable[[int], list[int]]:
    """Return a function ``count -> biases`` for the requested distribution.

    ``DEGREE`` is excluded here because it needs the graph topology; use
    :func:`degree_biases` directly for that case.
    """
    distribution = BiasDistribution(distribution)
    generator = ensure_rng(rng)
    if distribution is BiasDistribution.UNIFORM:
        low = int(params.pop("low", 1))
        high = int(params.pop("high", 64))
        _reject_unknown(params)
        return lambda count: uniform_biases(count, low=low, high=high, rng=generator)
    if distribution is BiasDistribution.GAUSS:
        mean = float(params.pop("mean", 32.0))
        stddev = float(params.pop("stddev", 12.0))
        _reject_unknown(params)
        return lambda count: gauss_biases(count, mean=mean, stddev=stddev, rng=generator)
    if distribution is BiasDistribution.POWER_LAW:
        alpha = float(params.pop("alpha", 2.0))
        max_bias = int(params.pop("max_bias", 1 << 16))
        _reject_unknown(params)
        return lambda count: power_law_biases(
            count, alpha=alpha, max_bias=max_bias, rng=generator
        )
    raise ValueError(
        "degree-based biases require graph topology; call degree_biases() instead"
    )


def _reject_unknown(params: dict) -> None:
    if params:
        raise TypeError(f"unknown bias-generator parameters: {sorted(params)}")


def group_element_ratio(biases: Sequence[int], num_groups: int) -> list[float]:
    """Fraction of biases whose radix group ``k`` bit is set, for each ``k``.

    Reproduces the quantity plotted in Figure 9 ("group element ratio"): for
    each bit position ``k`` the share of edges contributing a sub-bias to
    group ``2^k``.
    """
    if num_groups <= 0:
        raise ValueError("num_groups must be positive")
    if not biases:
        return [0.0] * num_groups
    counts = [0] * num_groups
    for bias in biases:
        value = int(bias)
        for k in range(num_groups):
            if value & (1 << k):
                counts[k] += 1
    total = len(biases)
    return [count / total for count in counts]
