"""Columnar update batches: the unit of work of batched ingestion.

The paper's Section 5.2 workflow treats a batch of edge updates as one
kernel launch: reorder the requests so updates touching the same vertex sit
together, collapse insert/delete pairs on the same edge, then apply each
vertex's net slice in one pass.  This module provides the host-side data
structure for that workflow:

* :class:`UpdateKind` / :class:`GraphUpdate` — the scalar update record
  (re-exported by :mod:`repro.graph.update_stream` for compatibility);
* :class:`UpdateBatch` — the same information as four NumPy columns
  (``src`` / ``dst`` / ``bias`` / ``insert_mask``), with ``argsort``-based
  per-vertex grouping, vectorized duplicate detection, and net-effect
  normalization that reproduces the timestamp-ordered semantics of the
  scalar path exactly (including the order in which net insertions and
  deletions are emitted, so batched and per-edge ingestion build
  byte-identical sampling state).

An :class:`UpdateBatch` still behaves like a sequence of
:class:`GraphUpdate` (``len`` / indexing / iteration), so every legacy
call-site — streaming ingestion, tests, examples — keeps working unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Iterator, Sequence

import numpy as np

_EMPTY_INT64 = np.empty(0, dtype=np.int64)
_EMPTY_FLOAT64 = np.empty(0, dtype=np.float64)


class UpdateKind(str, enum.Enum):
    """The two edge-level events a dynamic graph experiences."""

    INSERT = "insert"
    DELETE = "delete"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class GraphUpdate:
    """A single edge insertion or deletion with a logical timestamp."""

    kind: UpdateKind
    src: int
    dst: int
    bias: float = 1.0
    timestamp: int = 0

    def as_edge(self):
        """The edge this update refers to."""
        from repro.graph.dynamic_graph import Edge

        return Edge(self.src, self.dst, self.bias)


class VertexUpdateSlice:
    """One vertex's share of a batch, in timestamp order (column views).

    ``has_duplicates`` records whether any destination appears more than
    once in this slice — only then can insert/delete cancellation or a bias
    update occur.  A plain ``__slots__`` class (not a dataclass): one
    instance is built per touched vertex per batch, on the ingestion hot
    path.
    """

    __slots__ = ("vertex", "dsts", "biases", "insert_mask", "has_duplicates")

    def __init__(
        self,
        vertex: int,
        dsts: np.ndarray,
        biases: np.ndarray,
        insert_mask: np.ndarray,
        has_duplicates: bool,
    ) -> None:
        self.vertex = vertex
        self.dsts = dsts
        self.biases = biases
        self.insert_mask = insert_mask
        self.has_duplicates = has_duplicates

    def __len__(self) -> int:
        return len(self.dsts)

    def kind_runs(self) -> list[tuple[bool, int, int]]:
        """Maximal runs of equal update kind as ``(is_insert, start, stop)``.

        Replaying the slice run-by-run preserves the exact timestamp order
        of the scalar path while letting each run use a bulk mutator.
        """
        mask = self.insert_mask
        count = len(mask)
        if count == 0:
            return []
        first = bool(mask[0])
        if count == 1:
            return [(first, 0, 1)]
        boundaries = np.flatnonzero(mask[1:] != mask[:-1])
        if len(boundaries) == 0:
            return [(first, 0, count)]
        runs: list[tuple[bool, int, int]] = []
        kind = first
        start = 0
        for stop in (boundaries + 1).tolist():
            runs.append((kind, start, stop))
            kind = not kind
            start = stop
        runs.append((kind, start, count))
        return runs

    def normalize(
        self, membership: Callable[[np.ndarray], np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """Collapse the slice into net deletions and insertions.

        Reproduces :func:`repro.gpu.kernels.normalize_vertex_updates`
        exactly — same net effect, same emission order (first-occurrence
        order of the surviving destinations), same cancellation count — so
        the columnar and per-edge ingestion paths build identical state.

        ``membership`` maps an ``int64`` destination array to a boolean
        array saying which destinations are currently out-neighbours; it is
        only consulted for delete-then-reinsert destinations, and never on
        the duplicate-free fast path.

        Returns ``(deletions, insert_dsts, insert_biases, cancelled)``.
        """
        if not self.has_duplicates:
            # Fast path: every destination appears once, so the net effect
            # is the slice itself split by kind (emission order preserved).
            # Single-kind slices (the overwhelmingly common case) reuse the
            # column views without any masking allocation.
            mask = self.insert_mask
            if mask.all():
                return _EMPTY_INT64, self.dsts, self.biases, 0
            if not mask.any():
                return self.dsts, _EMPTY_INT64, _EMPTY_FLOAT64, 0
            return self.dsts[~mask], self.dsts[mask], self.biases[mask], 0

        # Replay the per-destination state machine of the scalar path.
        net: dict = {}  # dst -> ("insert" | "update" | "delete", bias | None)
        cancelled = 0
        for dst, bias, is_insert in zip(
            self.dsts.tolist(), self.biases.tolist(), self.insert_mask.tolist()
        ):
            previous = net.get(dst)
            if is_insert:
                if previous is not None and previous[0] == "delete":
                    # delete then insert: the edge survives with the new bias.
                    net[dst] = ("update", bias)
                else:
                    net[dst] = ("insert", bias)
            else:
                if previous is not None and previous[0] == "insert":
                    # insert then delete within the batch: both vanish.
                    del net[dst]
                    cancelled += 1
                else:
                    net[dst] = ("delete", None)

        update_dsts = [dst for dst, (action, _) in net.items() if action == "update"]
        existing = set()
        if update_dsts:
            present = membership(np.asarray(update_dsts, dtype=np.int64))
            existing = {
                dst for dst, hit in zip(update_dsts, present.tolist()) if hit
            }
        insert_dsts: list[int] = []
        insert_biases: list[float] = []
        deletions: list[int] = []
        for dst, (action, bias) in net.items():
            if action == "insert":
                insert_dsts.append(dst)
                insert_biases.append(bias)
            elif action == "delete":
                deletions.append(dst)
            else:  # "update": delete the old edge, insert the new bias
                if dst in existing:
                    deletions.append(dst)
                insert_dsts.append(dst)
                insert_biases.append(bias)
        return (
            np.asarray(deletions, dtype=np.int64),
            np.asarray(insert_dsts, dtype=np.int64),
            np.asarray(insert_biases, dtype=np.float64),
            cancelled,
        )


class UpdateBatch(Sequence[GraphUpdate]):
    """A batch of edge updates stored as NumPy columns.

    Parameters are parallel arrays; rows are in timestamp order.  The class
    satisfies the ``Sequence[GraphUpdate]`` protocol so it can stand in for
    the ``List[GraphUpdate]`` batches older code produced.
    """

    __slots__ = (
        "src",
        "dst",
        "bias",
        "insert_mask",
        "timestamp",
        "_groups",
        "_groups_have_dup_info",
    )

    def __init__(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        bias: np.ndarray,
        insert_mask: np.ndarray,
        timestamp: np.ndarray | None = None,
    ) -> None:
        self.src = np.ascontiguousarray(src, dtype=np.int64)
        self.dst = np.ascontiguousarray(dst, dtype=np.int64)
        self.bias = np.ascontiguousarray(bias, dtype=np.float64)
        self.insert_mask = np.ascontiguousarray(insert_mask, dtype=bool)
        if timestamp is None:
            timestamp = np.arange(len(self.src), dtype=np.int64)
        self.timestamp = np.ascontiguousarray(timestamp, dtype=np.int64)
        lengths = {
            len(self.src),
            len(self.dst),
            len(self.bias),
            len(self.insert_mask),
            len(self.timestamp),
        }
        if len(lengths) != 1:
            raise ValueError("update-batch columns must have matching lengths")
        self._groups: list[VertexUpdateSlice] | None = None
        self._groups_have_dup_info = False

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_updates(cls, updates: Iterable[GraphUpdate]) -> UpdateBatch:
        """Build columns from scalar update records (one pass)."""
        materialized = updates if isinstance(updates, (list, tuple)) else list(updates)
        count = len(materialized)
        src = np.empty(count, dtype=np.int64)
        dst = np.empty(count, dtype=np.int64)
        bias = np.empty(count, dtype=np.float64)
        insert_mask = np.empty(count, dtype=bool)
        timestamp = np.empty(count, dtype=np.int64)
        for row, update in enumerate(materialized):
            src[row] = update.src
            dst[row] = update.dst
            bias[row] = update.bias
            insert_mask[row] = update.kind is UpdateKind.INSERT
            timestamp[row] = update.timestamp
        return cls(src, dst, bias, insert_mask, timestamp)

    @classmethod
    def coerce(cls, updates) -> UpdateBatch:
        """Return ``updates`` as an :class:`UpdateBatch` (no-op when it is one)."""
        if isinstance(updates, cls):
            return updates
        return cls.from_updates(updates)

    # ------------------------------------------------------------------ #
    # Sequence[GraphUpdate] compatibility
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.src)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        kind = UpdateKind.INSERT if self.insert_mask[index] else UpdateKind.DELETE
        return GraphUpdate(
            kind,
            int(self.src[index]),
            int(self.dst[index]),
            float(self.bias[index]),
            int(self.timestamp[index]),
        )

    def __iter__(self) -> Iterator[GraphUpdate]:
        srcs = self.src.tolist()
        dsts = self.dst.tolist()
        biases = self.bias.tolist()
        inserts = self.insert_mask.tolist()
        stamps = self.timestamp.tolist()
        for src, dst, bias, is_insert, stamp in zip(srcs, dsts, biases, inserts, stamps):
            kind = UpdateKind.INSERT if is_insert else UpdateKind.DELETE
            yield GraphUpdate(kind, src, dst, bias, stamp)

    # ------------------------------------------------------------------ #
    # columnar introspection
    # ------------------------------------------------------------------ #
    @property
    def num_insertions(self) -> int:
        """Number of insert rows (before any cancellation)."""
        return int(self.insert_mask.sum())

    @property
    def num_deletions(self) -> int:
        """Number of delete rows (before any cancellation)."""
        return len(self) - self.num_insertions

    def max_vertex(self) -> int:
        """Highest vertex id referenced by the batch (-1 when empty)."""
        if len(self) == 0:
            return -1
        return int(max(self.src.max(), self.dst.max()))

    # ------------------------------------------------------------------ #
    # grouping (request reordering, Section 5.2 step 1)
    # ------------------------------------------------------------------ #
    def group_by_source(self, *, detect_duplicates: bool = True) -> list[VertexUpdateSlice]:
        """Per-vertex update slices in timestamp order.

        One stable ``argsort`` on the source column reorders the whole batch
        so each vertex's updates are contiguous (relative order preserved);
        one vectorized pass over the ``(src, dst)`` keys flags the vertices
        whose slice repeats a destination — only those can need insert/delete
        cancellation, so every other vertex takes the allocation-free
        normalization fast path.

        Slices are emitted in *first-appearance* order (the order the scalar
        path's request-reordering dict would produce), so engines that spawn
        per-vertex RNG streams on first contact create them in the identical
        sequence on either ingestion path.

        ``detect_duplicates=False`` skips the repeated-destination scan and
        marks every slice duplicate-free — only valid for consumers that
        replay slices verbatim (no normalization), like the rebuild-on-batch
        baseline engines.
        """
        if self._groups is not None and (
            self._groups_have_dup_info or not detect_duplicates
        ):
            return self._groups
        count = len(self)
        if count == 0:
            self._groups = []
            self._groups_have_dup_info = True
            return self._groups
        order = np.argsort(self.src, kind="stable")
        src_sorted = self.src[order]
        dst_sorted = self.dst[order]
        bias_sorted = self.bias[order]
        insert_sorted = self.insert_mask[order]
        boundaries = np.flatnonzero(src_sorted[1:] != src_sorted[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [count]))
        # Stable sort keeps each group's first row at its original batch
        # position; emitting groups by that position reproduces first-touch
        # order.
        emit = np.argsort(order[starts], kind="stable")
        starts = starts[emit]
        stops = stops[emit]

        # Vectorized duplicate detection: a (src, dst) pair occurring twice
        # means that vertex's slice needs the full normalization replay.
        dup_sources: set = set()
        if detect_duplicates:
            width = int(dst_sorted.max()) + 1 if count else 1
            keys = src_sorted * width + dst_sorted
            sorted_keys = np.sort(keys)
            if bool((sorted_keys[1:] == sorted_keys[:-1]).any()):
                unique_keys, key_counts = np.unique(keys, return_counts=True)
                dup_sources = set((unique_keys[key_counts > 1] // width).tolist())

        groups: list[VertexUpdateSlice] = []
        for start, stop in zip(starts.tolist(), stops.tolist()):
            vertex = int(src_sorted[start])
            groups.append(
                VertexUpdateSlice(
                    vertex=vertex,
                    dsts=dst_sorted[start:stop],
                    biases=bias_sorted[start:stop],
                    insert_mask=insert_sorted[start:stop],
                    has_duplicates=vertex in dup_sources,
                )
            )
        self._groups = groups
        self._groups_have_dup_info = detect_duplicates
        return groups

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UpdateBatch(updates={len(self)}, insertions={self.num_insertions}, "
            f"deletions={self.num_deletions})"
        )
