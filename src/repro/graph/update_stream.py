"""Dynamic-update stream generation.

Section 6.1 of the paper describes the workload-construction recipe used by
every experiment:

1. split the original edge set into A (initial graph) and B (a reserve of
   ``10 * BATCHSIZE`` edges),
2. repeatedly flip a coin to decide insert vs. delete,
3. an insertion draws an edge from B and adds it to A, a deletion removes a
   random edge currently in A,
4. repeat ``10 * BATCHSIZE`` times, giving ten batches of BATCHSIZE updates.

Three workload flavours are evaluated: "Insertion", "Deletion" and "Mixed".
:func:`generate_update_stream` reproduces the recipe, and
:class:`UpdateStream` packages the batches together with the initial graph.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from collections.abc import Iterator

from repro.errors import DuplicateEdgeError, EdgeNotFoundError, UpdateError
from repro.graph.dynamic_graph import DynamicGraph, Edge
from repro.graph.update_batch import GraphUpdate, UpdateBatch, UpdateKind
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "GraphUpdate",
    "UpdateBatch",
    "UpdateKind",
    "UpdateStream",
    "UpdateWorkload",
    "apply_updates",
    "generate_update_stream",
    "split_initial_and_updates",
]


class UpdateWorkload(str, enum.Enum):
    """Workload flavours from the paper's evaluation."""

    INSERTION = "insertion"
    DELETION = "deletion"
    MIXED = "mixed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class UpdateStream:
    """An initial graph plus an ordered sequence of update batches.

    Batches are stored columnar (:class:`UpdateBatch`); each batch still
    behaves like a sequence of :class:`GraphUpdate` records.
    """

    initial_graph: DynamicGraph
    batches: list[UpdateBatch] = field(default_factory=list)
    workload: UpdateWorkload = UpdateWorkload.MIXED

    @property
    def num_batches(self) -> int:
        """Number of update batches."""
        return len(self.batches)

    @property
    def num_updates(self) -> int:
        """Total number of updates across all batches."""
        return sum(len(batch) for batch in self.batches)

    def all_updates(self) -> Iterator[GraphUpdate]:
        """Iterate updates across batches in order."""
        for batch in self.batches:
            yield from batch

    def final_graph(self) -> DynamicGraph:
        """Apply every update to a copy of the initial graph and return it."""
        graph = self.initial_graph.copy()
        apply_updates(graph, self.all_updates())
        return graph


def apply_updates(graph: DynamicGraph, updates) -> None:
    """Apply a sequence of updates to ``graph`` in place.

    The batch is coerced to columnar form, grouped by source vertex with one
    stable argsort, and each vertex's slice is replayed as bulk kind-runs, so
    the resulting adjacency (including neighbour-array order) is identical
    to applying the updates one at a time in timestamp order.  Insertions of
    already-present edges and deletions of absent edges raise
    :class:`UpdateError` so that stream-generation bugs surface immediately.
    """
    if graph.undirected:
        # Mirrored arcs interleave vertices; keep the scalar order exactly.
        apply_updates_scalar(graph, updates)
        return
    batch = UpdateBatch.coerce(updates)
    if len(batch) == 0:
        return
    graph.ensure_vertices(batch.max_vertex())
    for group in batch.group_by_source():
        vertex = group.vertex
        dsts = group.dsts
        try:
            if len(dsts) == 1:
                if group.insert_mask[0]:
                    graph.add_edge(vertex, int(dsts[0]), float(group.biases[0]))
                else:
                    graph.remove_edge(vertex, int(dsts[0]))
            else:
                for is_insert, start, stop in group.kind_runs():
                    if is_insert:
                        graph.add_edges_bulk(
                            vertex,
                            dsts[start:stop],
                            group.biases[start:stop],
                        )
                    else:
                        graph.remove_edges_bulk(vertex, dsts[start:stop])
        except DuplicateEdgeError as exc:
            raise UpdateError(f"insertion of existing edge ({exc})") from exc
        except EdgeNotFoundError as exc:
            raise UpdateError(f"deletion of missing edge ({exc})") from exc


def apply_updates_scalar(graph: DynamicGraph, updates) -> None:
    """The legacy per-edge application path (reference semantics).

    Used for undirected graphs (where bulk per-vertex grouping would reorder
    the mirrored arcs) and by the equivalence tests as the ground truth the
    columnar path must match.
    """
    for update in updates:
        graph.ensure_vertex(update.src)
        graph.ensure_vertex(update.dst)
        if update.kind is UpdateKind.INSERT:
            if graph.has_edge(update.src, update.dst):
                raise UpdateError(
                    f"insertion of existing edge ({update.src}, {update.dst})"
                )
            graph.add_edge(update.src, update.dst, update.bias)
        elif update.kind is UpdateKind.DELETE:
            if not graph.has_edge(update.src, update.dst):
                raise UpdateError(
                    f"deletion of missing edge ({update.src}, {update.dst})"
                )
            graph.remove_edge(update.src, update.dst)
        else:  # pragma: no cover - enum is exhaustive
            raise UpdateError(f"unknown update kind {update.kind!r}")


def split_initial_and_updates(
    graph: DynamicGraph,
    reserve_edges: int,
    *,
    rng: RandomSource = None,
) -> tuple[DynamicGraph, list[Edge]]:
    """Split ``graph`` into an initial graph (set A) and a reserve edge pool (set B).

    ``reserve_edges`` edges are removed uniformly at random from the graph and
    returned as the pool future insertions will draw from, mirroring step (i)
    of the paper's workload recipe.
    """
    generator = ensure_rng(rng)
    all_edges = list(graph.edges())
    if reserve_edges > len(all_edges):
        raise ValueError(
            f"cannot reserve {reserve_edges} edges from a graph with only "
            f"{len(all_edges)} edges"
        )
    generator.shuffle(all_edges)
    reserve = all_edges[:reserve_edges]
    initial = graph.copy()
    for edge in reserve:
        initial.remove_edge(edge.src, edge.dst)
    return initial, reserve


def generate_update_stream(
    graph: DynamicGraph,
    *,
    batch_size: int,
    num_batches: int = 10,
    workload: UpdateWorkload | str = UpdateWorkload.MIXED,
    rng: RandomSource = None,
) -> UpdateStream:
    """Generate a paper-style update stream from an existing graph.

    Parameters
    ----------
    graph:
        The full graph; a reserve of ``num_batches * batch_size`` edges is
        carved out for insertions (for insertion/mixed workloads).
    batch_size:
        Number of updates per batch (the paper's BATCHSIZE, 100K by default
        there; scaled down here).
    num_batches:
        Number of batches (10 in the paper).
    workload:
        ``insertion``, ``deletion`` or ``mixed``.
    """
    check_positive_int(batch_size, "batch_size")
    check_positive_int(num_batches, "num_batches")
    workload = UpdateWorkload(workload)
    generator = ensure_rng(rng)
    total_updates = batch_size * num_batches

    if workload is UpdateWorkload.DELETION:
        reserve: list[Edge] = []
        initial = graph.copy()
    else:
        initial, reserve = split_initial_and_updates(graph, total_updates, rng=generator)

    # Track the live edge set of A so deletions always pick an existing edge
    # and insertions never duplicate one.
    live_edges: list[Edge] = list(initial.edges())
    live_keys = {(edge.src, edge.dst) for edge in live_edges}

    def pick_live_index() -> int:
        # Swap-with-last removal keeps this O(1); skip stale entries lazily.
        while True:
            index = generator.randrange(len(live_edges))
            edge = live_edges[index]
            if (edge.src, edge.dst) in live_keys:
                return index
            live_edges[index] = live_edges[-1]
            live_edges.pop()

    batches: list[UpdateBatch] = []
    timestamp = 0
    reserve_cursor = 0
    for _ in range(num_batches):
        batch: list[GraphUpdate] = []
        for _ in range(batch_size):
            if workload is UpdateWorkload.INSERTION:
                do_insert = True
            elif workload is UpdateWorkload.DELETION:
                do_insert = False
            else:
                do_insert = generator.random() < 0.5
                if do_insert and reserve_cursor >= len(reserve):
                    do_insert = False
                if not do_insert and not live_keys:
                    do_insert = True

            if do_insert:
                if reserve_cursor >= len(reserve):
                    raise UpdateError("insertion reserve exhausted; reduce batch size")
                edge = reserve[reserve_cursor]
                reserve_cursor += 1
                batch.append(
                    GraphUpdate(UpdateKind.INSERT, edge.src, edge.dst, edge.bias, timestamp)
                )
                live_edges.append(edge)
                live_keys.add((edge.src, edge.dst))
            else:
                if not live_keys:
                    raise UpdateError("no live edges remain to delete; reduce batch size")
                index = pick_live_index()
                edge = live_edges[index]
                live_edges[index] = live_edges[-1]
                live_edges.pop()
                live_keys.remove((edge.src, edge.dst))
                batch.append(
                    GraphUpdate(UpdateKind.DELETE, edge.src, edge.dst, edge.bias, timestamp)
                )
            timestamp += 1
        batches.append(UpdateBatch.from_updates(batch))

    return UpdateStream(initial_graph=initial, batches=batches, workload=workload)
