"""Plain-text edge-list input/output.

The evaluation datasets in the paper come from SNAP / KONECT edge lists.  The
reproduction ships synthetic stand-ins, but the same loader accepts real SNAP
files so users can run the benchmarks on the original graphs if they have the
data locally.
"""

from __future__ import annotations

from pathlib import Path
from collections.abc import Iterable

from repro.errors import GraphError
from repro.graph.dynamic_graph import DynamicGraph

PathLike = str | Path


def load_edge_list(
    path: PathLike,
    *,
    undirected: bool = False,
    default_bias: float = 1.0,
    comment_prefixes: tuple[str, ...] = ("#", "%"),
) -> DynamicGraph:
    """Load a whitespace-separated edge list into a :class:`DynamicGraph`.

    Each non-comment line must contain ``src dst`` or ``src dst bias``.
    Duplicate edges in the file are silently skipped (SNAP dumps of undirected
    graphs list both arc directions).
    """
    path = Path(path)
    edges: list[tuple[int, int, float]] = []
    max_vertex = -1
    with path.open(encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith(comment_prefixes):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(
                    f"{path}:{line_number}: expected 'src dst [bias]', got {line!r}"
                )
            try:
                src, dst = int(parts[0]), int(parts[1])
                bias = float(parts[2]) if len(parts) >= 3 else float(default_bias)
            except ValueError as exc:
                raise GraphError(f"{path}:{line_number}: malformed edge {line!r}") from exc
            edges.append((src, dst, bias))
            max_vertex = max(max_vertex, src, dst)

    graph = DynamicGraph(max_vertex + 1, undirected=undirected)
    for src, dst, bias in edges:
        if graph.has_edge(src, dst):
            continue
        if undirected and graph.has_edge(dst, src):
            continue
        graph.add_edge(src, dst, bias)
    return graph


def save_edge_list(
    graph: DynamicGraph,
    path: PathLike,
    *,
    include_bias: bool = True,
    header: str | None = None,
) -> None:
    """Write a graph as a whitespace-separated edge list."""
    path = Path(path)
    seen = set()
    with path.open("w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for edge in graph.edges():
            if graph.undirected:
                key = (min(edge.src, edge.dst), max(edge.src, edge.dst))
                if key in seen:
                    continue
                seen.add(key)
            if include_bias:
                handle.write(f"{edge.src} {edge.dst} {edge.bias}\n")
            else:
                handle.write(f"{edge.src} {edge.dst}\n")


def edges_from_pairs(
    pairs: Iterable[tuple[int, int]],
    *,
    bias: float = 1.0,
) -> list[tuple[int, int, float]]:
    """Attach a constant bias to bare ``(src, dst)`` pairs."""
    return [(src, dst, bias) for src, dst in pairs]
