"""Dynamic graph substrate.

The paper's system sits on top of a Hornet-like dynamic graph structure.  This
package provides that substrate in pure Python:

* :class:`~repro.graph.dynamic_graph.DynamicGraph` — an adjacency structure
  supporting O(1) amortised edge insertion, O(1) deletion via swap-with-last,
  and per-edge biases.
* :class:`~repro.graph.csr.CSRGraph` — an immutable CSR snapshot used by the
  static baselines and for fast bulk walks.
* Synthetic graph and bias generators reproducing the dataset shapes and bias
  distributions in the paper's evaluation.
* Update-stream generation following the methodology of Section 6.1.
* 1-D partitioning mirroring the multi-GPU layout of Section 9.1.
"""

from repro.graph.dynamic_graph import DynamicGraph, Edge
from repro.graph.csr import CSRGraph
from repro.graph.edge_list import load_edge_list, save_edge_list
from repro.graph.bias import (
    BiasDistribution,
    degree_biases,
    gauss_biases,
    power_law_biases,
    uniform_biases,
    make_bias_generator,
)
from repro.graph.generators import (
    erdos_renyi_graph,
    power_law_graph,
    rmat_graph,
    star_graph,
    complete_graph,
    path_graph,
    running_example_graph,
)
from repro.graph.update_stream import (
    GraphUpdate,
    UpdateKind,
    UpdateStream,
    generate_update_stream,
    split_initial_and_updates,
)
from repro.graph.partition import OneDimPartition, partition_graph

__all__ = [
    "DynamicGraph",
    "Edge",
    "CSRGraph",
    "load_edge_list",
    "save_edge_list",
    "BiasDistribution",
    "degree_biases",
    "gauss_biases",
    "power_law_biases",
    "uniform_biases",
    "make_bias_generator",
    "erdos_renyi_graph",
    "power_law_graph",
    "rmat_graph",
    "star_graph",
    "complete_graph",
    "path_graph",
    "running_example_graph",
    "GraphUpdate",
    "UpdateKind",
    "UpdateStream",
    "generate_update_stream",
    "split_initial_and_updates",
    "OneDimPartition",
    "partition_graph",
]
