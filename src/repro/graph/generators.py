"""Synthetic graph generators.

The paper evaluates on five real-world graphs (Amazon, Google, Citation,
LiveJournal, Twitter).  Those datasets are not redistributable here, so the
benchmark harness uses scaled-down synthetic stand-ins whose degree profiles
match the originals in shape:

* :func:`rmat_graph` — the R-MAT recursive generator [Chakrabarti et al. 2004]
  the paper itself cites for power-law graph structure; this is the primary
  stand-in for the social / web graphs.
* :func:`power_law_graph` — a preferential-attachment generator, used for the
  smaller citation-like graphs.
* :func:`erdos_renyi_graph` — a uniform random graph for control experiments.
* Small deterministic topologies (star, path, complete) for tests, plus the
  paper's running example graph (Figure 1, snapshot 1).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.graph.bias import BiasDistribution, degree_biases, make_bias_generator
from repro.graph.dynamic_graph import DynamicGraph
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import check_non_negative_int, check_positive_int


def running_example_graph() -> DynamicGraph:
    """The weighted 6-vertex running example from Figure 1 (snapshot 1).

    Edges are listed in ``(src, dst, bias)`` form; vertex 2's out-edges
    (2, 1, 5), (2, 4, 4) and (2, 5, 3) are the ones used throughout the
    paper's worked examples.
    """
    edges = [
        (0, 1, 5),
        (0, 3, 1),
        (1, 2, 6),
        (2, 1, 5),
        (2, 4, 4),
        (2, 5, 3),
        (3, 4, 7),
        (4, 5, 5),
        (5, 0, 3),
        (5, 3, 5),
    ]
    return DynamicGraph.from_edges(edges, num_vertices=6)


def star_graph(num_leaves: int, *, bias: float = 1.0) -> DynamicGraph:
    """A hub (vertex 0) connected to ``num_leaves`` leaves."""
    check_positive_int(num_leaves, "num_leaves")
    edges = [(0, leaf, bias) for leaf in range(1, num_leaves + 1)]
    return DynamicGraph.from_edges(edges, num_vertices=num_leaves + 1)


def path_graph(num_vertices: int, *, bias: float = 1.0) -> DynamicGraph:
    """A simple directed path 0 -> 1 -> ... -> n-1."""
    check_positive_int(num_vertices, "num_vertices")
    edges = [(i, i + 1, bias) for i in range(num_vertices - 1)]
    return DynamicGraph.from_edges(edges, num_vertices=num_vertices)


def complete_graph(num_vertices: int, *, bias: float = 1.0) -> DynamicGraph:
    """A complete directed graph without self-loops."""
    check_positive_int(num_vertices, "num_vertices")
    edges = [
        (src, dst, bias)
        for src in range(num_vertices)
        for dst in range(num_vertices)
        if src != dst
    ]
    return DynamicGraph.from_edges(edges, num_vertices=num_vertices)


def erdos_renyi_graph(
    num_vertices: int,
    num_edges: int,
    *,
    bias_distribution: BiasDistribution | str = BiasDistribution.UNIFORM,
    rng: RandomSource = None,
    undirected: bool = False,
) -> DynamicGraph:
    """A uniform random graph with exactly ``num_edges`` distinct edges."""
    check_positive_int(num_vertices, "num_vertices")
    check_non_negative_int(num_edges, "num_edges")
    generator = ensure_rng(rng)
    max_edges = num_vertices * (num_vertices - 1)
    if undirected:
        max_edges //= 2
    if num_edges > max_edges:
        raise ValueError(
            f"cannot place {num_edges} distinct edges in a graph with "
            f"{num_vertices} vertices (max {max_edges})"
        )
    pairs = set()
    while len(pairs) < num_edges:
        src = generator.randrange(num_vertices)
        dst = generator.randrange(num_vertices)
        if src == dst:
            continue
        if undirected and (dst, src) in pairs:
            continue
        pairs.add((src, dst))
    ordered = sorted(pairs)
    biases = _make_biases(ordered, num_vertices, bias_distribution, generator)
    graph = DynamicGraph(num_vertices, undirected=undirected)
    for (src, dst), bias in zip(ordered, biases):
        graph.add_edge(src, dst, bias)
    return graph


def power_law_graph(
    num_vertices: int,
    edges_per_vertex: int,
    *,
    bias_distribution: BiasDistribution | str = BiasDistribution.DEGREE,
    rng: RandomSource = None,
) -> DynamicGraph:
    """A preferential-attachment (Barabási–Albert style) directed graph.

    Each new vertex attaches ``edges_per_vertex`` out-edges to existing
    vertices with probability proportional to their current in-degree plus
    one, producing the heavy-tailed degree distribution of real graphs.
    """
    check_positive_int(num_vertices, "num_vertices")
    check_positive_int(edges_per_vertex, "edges_per_vertex")
    if num_vertices <= edges_per_vertex:
        raise ValueError("num_vertices must exceed edges_per_vertex")
    generator = ensure_rng(rng)

    # Repeated-vertex list implements preferential attachment in O(1) per draw.
    attachment_pool: list[int] = list(range(edges_per_vertex + 1))
    pairs = set()
    for new_vertex in range(edges_per_vertex + 1, num_vertices):
        chosen = set()
        attempts = 0
        while len(chosen) < edges_per_vertex and attempts < 50 * edges_per_vertex:
            target = generator.choice(attachment_pool)
            attempts += 1
            if target != new_vertex:
                chosen.add(target)
        # Fall back to uniform choice if the pool was too concentrated.
        while len(chosen) < edges_per_vertex:
            target = generator.randrange(new_vertex)
            chosen.add(target)
        for target in chosen:
            pairs.add((new_vertex, target))
            attachment_pool.append(target)
        attachment_pool.append(new_vertex)

    # Seed clique among the first vertices so every vertex has out-edges.
    for src in range(edges_per_vertex + 1):
        for dst in range(edges_per_vertex + 1):
            if src != dst:
                pairs.add((src, dst))

    ordered = sorted(pairs)
    biases = _make_biases(ordered, num_vertices, bias_distribution, generator)
    graph = DynamicGraph(num_vertices)
    for (src, dst), bias in zip(ordered, biases):
        graph.add_edge(src, dst, bias)
    return graph


def rmat_graph(
    scale: int,
    edge_factor: int,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    bias_distribution: BiasDistribution | str = BiasDistribution.DEGREE,
    rng: RandomSource = None,
) -> DynamicGraph:
    """An R-MAT graph with ``2**scale`` vertices and ``edge_factor * 2**scale`` edges.

    The default (a, b, c) parameters are the Graph500 values, which produce a
    skewed, power-law-like degree distribution comparable to the Twitter /
    LiveJournal graphs in the paper.
    """
    check_positive_int(scale, "scale")
    check_positive_int(edge_factor, "edge_factor")
    if min(a, b, c) < 0 or a + b + c >= 1.0:
        raise ValueError("R-MAT parameters must be non-negative and a + b + c < 1")
    generator = ensure_rng(rng)
    num_vertices = 1 << scale
    target_edges = edge_factor * num_vertices

    pairs = set()
    attempts = 0
    max_attempts = 20 * target_edges
    while len(pairs) < target_edges and attempts < max_attempts:
        attempts += 1
        src, dst = 0, 0
        for _ in range(scale):
            r = generator.random()
            src <<= 1
            dst <<= 1
            if r < a:
                pass
            elif r < a + b:
                dst |= 1
            elif r < a + b + c:
                src |= 1
            else:
                src |= 1
                dst |= 1
        if src != dst:
            pairs.add((src, dst))

    ordered = sorted(pairs)
    biases = _make_biases(ordered, num_vertices, bias_distribution, generator)
    graph = DynamicGraph(num_vertices)
    for (src, dst), bias in zip(ordered, biases):
        graph.add_edge(src, dst, bias)
    return graph


def _make_biases(
    pairs: Sequence[tuple[int, int]],
    num_vertices: int,
    distribution: BiasDistribution | str,
    rng,
) -> list[float]:
    """Produce one bias per edge according to the requested distribution."""
    distribution = BiasDistribution(distribution)
    if distribution is BiasDistribution.DEGREE:
        in_degree = [0] * num_vertices
        for _, dst in pairs:
            in_degree[dst] += 1
        return [float(bias) for bias in degree_biases([in_degree[dst] for _, dst in pairs])]
    generator_fn = make_bias_generator(distribution, rng=rng)
    return [float(bias) for bias in generator_fn(len(pairs))]
