"""1-D graph partitioning and shared-memory shard stores (Section 9.1).

Bingo scales to multiple GPUs with KnightKing-style 1-D partitioning: vertices
are assigned to devices, each device owns the out-edges (and the per-vertex
sampling structures) of its vertices, and walkers migrate between devices when
a step crosses a partition boundary.  This module provides three layers of
that design:

* :class:`OneDimPartition` / :func:`partition_graph` — the vertex→device
  assignment, with range-based (``contiguous``), degree-oblivious
  (``round_robin``) and load-greedy (``degree_balanced``) strategies;
* :class:`SharedGraphShards` — the whole adjacency flattened into CSR
  columns living in :mod:`multiprocessing.shared_memory`, so worker
  processes attach zero-copy NumPy views instead of pickling neighbour
  lists;
* :class:`ShardSubgraph` — one worker's read-only view: the full topology
  (walker hand-offs need every vertex reachable) plus the set of vertices
  the shard *owns* and therefore builds sampling state for.

The shard-parallel walk runner in :mod:`repro.walks.parallel` consumes these;
the transfer accounting lives in :mod:`repro.gpu.multi_device`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from collections.abc import Iterator, Sequence

import numpy as np

from repro.graph.dynamic_graph import DynamicGraph, Edge
from repro.utils.validation import check_positive_int

_EMPTY_INT64 = np.empty(0, dtype=np.int64)


@dataclass
class OneDimPartition:
    """Assignment of vertices to ``num_parts`` devices.

    Attributes
    ----------
    num_parts:
        Number of partitions (simulated devices).
    owner:
        ``owner[v]`` is the partition that owns vertex ``v``.
    vertices:
        ``vertices[p]`` lists the vertices owned by partition ``p``.
    """

    num_parts: int
    owner: list[int]
    vertices: list[list[int]]
    _owner_array: np.ndarray | None = field(
        default=None, repr=False, compare=False
    )

    def _check_parts(self) -> None:
        if self.num_parts < 1:
            raise ValueError("partition must have at least one part")

    def owner_array(self) -> np.ndarray:
        """The owner column as an ``int64`` array (cached)."""
        if self._owner_array is None or len(self._owner_array) != len(self.owner):
            self._owner_array = np.asarray(self.owner, dtype=np.int64)
        return self._owner_array

    def part_of(self, vertex: int) -> int:
        """Partition owning ``vertex``.

        Vertices beyond the partitioned prefix (created by update batches
        after the partition was computed) are provisionally owned round-robin
        (``vertex % num_parts``) until the next repartition, instead of
        crashing on an out-of-range lookup.
        """
        self._check_parts()
        if vertex < 0:
            raise ValueError(f"vertex id must be non-negative, got {vertex}")
        if vertex < len(self.owner):
            return self.owner[vertex]
        return vertex % self.num_parts

    def owner_for(self, num_vertices: int) -> np.ndarray:
        """Owner column extended to ``num_vertices`` (round-robin tail)."""
        self._check_parts()
        owner = self.owner_array()
        if num_vertices <= len(owner):
            return owner[:num_vertices]
        tail = np.arange(len(owner), num_vertices, dtype=np.int64) % self.num_parts
        return np.concatenate([owner, tail])

    def edge_cut(self, graph: DynamicGraph) -> int:
        """Number of arcs whose endpoints live on different partitions.

        Each such arc forces one walker transfer per traversal in the
        multi-device model.  Works on graphs that grew past the partitioned
        prefix (new vertices fall back to round-robin ownership) and on
        partitions with empty parts.
        """
        self._check_parts()
        owner = self.owner_for(graph.num_vertices)
        cut = 0
        for src in range(graph.num_vertices):
            dsts = graph.neighbor_array(src)
            if len(dsts):
                cut += int(np.count_nonzero(owner[dsts] != owner[src]))
        return cut

    def balance(self, graph: DynamicGraph) -> float:
        """Load imbalance: max part arc-count divided by the mean (1.0 = perfect).

        Empty partitions count toward the mean (they are idle devices); a
        graph without arcs is perfectly balanced by definition.
        """
        self._check_parts()
        owner = self.owner_for(graph.num_vertices)
        degrees = np.fromiter(
            (graph.degree(v) for v in range(graph.num_vertices)),
            dtype=np.int64,
            count=graph.num_vertices,
        )
        loads = np.bincount(owner, weights=degrees, minlength=self.num_parts)
        total = float(loads.sum())
        if total == 0.0:
            return 1.0
        mean = total / self.num_parts
        return float(loads.max()) / mean


def partition_graph(
    graph: DynamicGraph,
    num_parts: int,
    *,
    strategy: str = "contiguous",
) -> OneDimPartition:
    """Partition the vertex set into ``num_parts`` groups.

    Strategies
    ----------
    ``contiguous``
        Consecutive vertex ranges balanced by arc count (the KnightKing /
        Bingo 1-D layout).  Vertices without out-edges — including a
        trailing block of isolated vertices — are spread evenly across the
        ranges instead of piling onto the last partition.
    ``round_robin``
        Vertex ``v`` goes to partition ``v % num_parts``; a degree-oblivious
        baseline useful for comparing edge cuts.
    ``degree_balanced``
        Greedy longest-processing-time assignment: vertices are placed, in
        decreasing degree order, onto the currently lightest partition.
        Produces non-contiguous shards with near-perfect arc balance, which
        is what the shard-parallel walk runner wants.
    """
    check_positive_int(num_parts, "num_parts")
    n = graph.num_vertices
    owner = np.zeros(n, dtype=np.int64)

    if strategy == "round_robin":
        if n:
            owner = np.arange(n, dtype=np.int64) % num_parts
    elif strategy == "contiguous":
        if n:
            degrees = np.fromiter(
                (graph.degree(v) for v in range(n)), dtype=np.int64, count=n
            )
            # Hybrid load: the arc count dominates, but every vertex carries
            # one quantum so edgeless stretches still split into even ranges
            # (the old splitter dumped every trailing isolated vertex onto
            # the last part).
            load = degrees * np.int64(n) + 1
            cumulative_before = np.concatenate(([0], np.cumsum(load)[:-1]))
            owner = np.minimum(
                (cumulative_before * num_parts) // int(load.sum()),
                num_parts - 1,
            ).astype(np.int64)
    elif strategy == "degree_balanced":
        if n:
            degrees = np.fromiter(
                (graph.degree(v) for v in range(n)), dtype=np.int64, count=n
            )
            order = np.argsort(-degrees, kind="stable")
            # Heap of (arc_load, vertex_count, part): ties on arc load break
            # by vertex count, so isolated vertices also spread evenly.
            heap = [(0, 0, part) for part in range(num_parts)]
            for vertex in order.tolist():
                arc_load, count, part = heapq.heappop(heap)
                owner[vertex] = part
                heapq.heappush(
                    heap, (arc_load + int(degrees[vertex]), count + 1, part)
                )
    else:
        raise ValueError(f"unknown partitioning strategy {strategy!r}")

    vertices: list[list[int]] = [[] for _ in range(num_parts)]
    for vertex, part in enumerate(owner.tolist()):
        vertices[part].append(vertex)
    return OneDimPartition(
        num_parts=num_parts,
        owner=owner.tolist(),
        vertices=vertices,
        _owner_array=owner,
    )


# --------------------------------------------------------------------------- #
# shared-memory shard store
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SharedShardHandle:
    """Picklable description of a shared columnar graph (names, not data).

    This is what crosses the process boundary: four shared-memory block
    names plus the array sizes.  The adjacency itself is never pickled.
    """

    indptr_name: str
    targets_name: str
    biases_name: str
    owner_name: str
    num_vertices: int
    num_arcs: int
    num_parts: int


def _allocate_block(array: np.ndarray) -> shared_memory.SharedMemory:
    block = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
    view[:] = array
    return block


def _attach_view(
    block: shared_memory.SharedMemory, length: int, dtype
) -> np.ndarray:
    return np.ndarray((length,), dtype=dtype, buffer=block.buf)


class SharedGraphShards:
    """A partitioned graph flattened into shared-memory CSR columns.

    The coordinator :meth:`create`\\ s the store (one copy of the adjacency
    into shared memory); each worker :meth:`attach`\\ es by handle and wraps
    the blocks in zero-copy NumPy views.  Per-shard
    :class:`ShardSubgraph` views expose the read-only graph API the engines'
    ``for_shard`` constructors consume.
    """

    def __init__(
        self,
        blocks: list[shared_memory.SharedMemory],
        indptr: np.ndarray,
        targets: np.ndarray,
        biases: np.ndarray,
        owner: np.ndarray,
        num_parts: int,
        *,
        owns_blocks: bool,
    ) -> None:
        self._blocks = blocks
        self.indptr = indptr
        self.targets = targets
        self.biases = biases
        self.owner = owner
        self.num_parts = num_parts
        self._owns_blocks = owns_blocks
        self._closed = False

    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls, graph: DynamicGraph, partition: OneDimPartition
    ) -> SharedGraphShards:
        """Export ``graph`` + ``partition`` into fresh shared-memory blocks."""
        n = graph.num_vertices
        degrees = np.fromiter(
            (graph.degree(v) for v in range(n)), dtype=np.int64, count=n
        )
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        arcs = int(indptr[-1])
        targets = np.empty(arcs, dtype=np.int64)
        biases = np.empty(arcs, dtype=np.float64)
        for vertex in range(n):
            start, stop = int(indptr[vertex]), int(indptr[vertex + 1])
            if stop > start:
                targets[start:stop] = graph.neighbor_array(vertex)
                biases[start:stop] = graph.bias_array(vertex)
        owner = partition.owner_for(n)

        blocks = [
            _allocate_block(indptr),
            _allocate_block(targets),
            _allocate_block(biases),
            _allocate_block(owner),
        ]
        return cls(
            blocks,
            _attach_view(blocks[0], n + 1, np.int64),
            _attach_view(blocks[1], arcs, np.int64),
            _attach_view(blocks[2], arcs, np.float64),
            _attach_view(blocks[3], n, np.int64),
            partition.num_parts,
            owns_blocks=True,
        )

    def handle(self) -> SharedShardHandle:
        """The picklable handle workers use to :meth:`attach`."""
        return SharedShardHandle(
            indptr_name=self._blocks[0].name,
            targets_name=self._blocks[1].name,
            biases_name=self._blocks[2].name,
            owner_name=self._blocks[3].name,
            num_vertices=int(len(self.indptr) - 1),
            num_arcs=int(len(self.targets)),
            num_parts=self.num_parts,
        )

    @classmethod
    def attach(cls, handle: SharedShardHandle) -> SharedGraphShards:
        """Map an existing store into this process (zero-copy views)."""
        # Workers are spawned by multiprocessing and share the coordinator's
        # resource tracker (the fd travels in the spawn preparation data), so
        # attaching re-registers the same names as a no-op and only the
        # owning store's unlink deregisters them.
        blocks = [
            shared_memory.SharedMemory(name=handle.indptr_name),
            shared_memory.SharedMemory(name=handle.targets_name),
            shared_memory.SharedMemory(name=handle.biases_name),
            shared_memory.SharedMemory(name=handle.owner_name),
        ]
        return cls(
            blocks,
            _attach_view(blocks[0], handle.num_vertices + 1, np.int64),
            _attach_view(blocks[1], handle.num_arcs, np.int64),
            _attach_view(blocks[2], handle.num_arcs, np.float64),
            _attach_view(blocks[3], handle.num_vertices, np.int64),
            handle.num_parts,
            owns_blocks=False,
        )

    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        return int(len(self.indptr) - 1)

    @property
    def num_arcs(self) -> int:
        return int(len(self.targets))

    def shard_view(self, shard: int) -> ShardSubgraph:
        """The read-only subgraph view for ``shard``."""
        if not (0 <= shard < self.num_parts):
            raise ValueError(f"shard {shard} out of range for {self.num_parts} parts")
        return ShardSubgraph(self.indptr, self.targets, self.biases, self.owner, shard)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Drop this process's mappings (and unlink when it owns the blocks)."""
        if self._closed:
            return
        self._closed = True
        # Release the array views before closing the underlying mmaps.
        self.indptr = self.targets = self.biases = self.owner = _EMPTY_INT64
        for block in self._blocks:
            try:
                block.close()
            except OSError:  # pragma: no cover - double close on interpreter exit
                pass
            if self._owns_blocks:
                try:
                    block.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


class ShardSubgraph:
    """One shard's read-only view of a shared columnar graph.

    Exposes the :class:`~repro.graph.dynamic_graph.DynamicGraph` read API the
    engines need (full topology, so walkers can be handed off and node2vec
    can test arbitrary edges) plus the ``owned`` vertex set the shard builds
    sampling state for.
    """

    __slots__ = ("indptr", "targets", "biases", "owner", "shard", "_owned")

    def __init__(
        self,
        indptr: np.ndarray,
        targets: np.ndarray,
        biases: np.ndarray,
        owner: np.ndarray,
        shard: int,
    ) -> None:
        self.indptr = indptr
        self.targets = targets
        self.biases = biases
        self.owner = owner
        self.shard = int(shard)
        self._owned: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        return int(len(self.indptr) - 1)

    @property
    def num_arcs(self) -> int:
        return int(len(self.targets))

    @property
    def num_edges(self) -> int:
        return self.num_arcs

    @property
    def undirected(self) -> bool:
        return False

    def owned_vertices(self) -> np.ndarray:
        """Vertices this shard owns (builds sampling state for), ascending."""
        if self._owned is None:
            self._owned = np.flatnonzero(self.owner == self.shard).astype(np.int64)
        return self._owned

    def owns(self, vertex: int) -> bool:
        return 0 <= vertex < self.num_vertices and int(self.owner[vertex]) == self.shard

    # ------------------------------------------------------------------ #
    def _in_range(self, vertex: int) -> bool:
        return 0 <= vertex < self.num_vertices

    def degree(self, vertex: int) -> int:
        if not self._in_range(vertex):
            return 0
        return int(self.indptr[vertex + 1] - self.indptr[vertex])

    def neighbor_array(self, vertex: int) -> np.ndarray:
        return self.targets[self.indptr[vertex] : self.indptr[vertex + 1]]

    def bias_array(self, vertex: int) -> np.ndarray:
        return self.biases[self.indptr[vertex] : self.indptr[vertex + 1]]

    def neighbors(self, vertex: int) -> Sequence[int]:
        return self.neighbor_array(vertex).tolist()

    def neighbor_biases(self, vertex: int) -> Sequence[float]:
        return self.bias_array(vertex).tolist()

    def has_edge(self, src: int, dst: int) -> bool:
        if not self._in_range(src) or not self._in_range(dst):
            return False
        return bool(np.any(self.neighbor_array(src) == dst))

    def out_edges(self, vertex: int) -> Iterator[Edge]:
        for dst, bias in zip(self.neighbors(vertex), self.neighbor_biases(vertex)):
            yield Edge(vertex, dst, bias)

    def edges(self) -> Iterator[Edge]:
        for vertex in range(self.num_vertices):
            yield from self.out_edges(vertex)

    def total_bias(self, vertex: int) -> float:
        return float(self.bias_array(vertex).sum())

    def max_degree(self) -> int:
        if self.num_vertices == 0:
            return 0
        return int(np.max(np.diff(self.indptr)))

    def average_degree(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return self.num_arcs / self.num_vertices

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardSubgraph(shard={self.shard}, vertices={self.num_vertices}, "
            f"owned={len(self.owned_vertices())}, arcs={self.num_arcs})"
        )
