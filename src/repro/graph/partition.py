"""1-D graph partitioning (Section 9.1).

Bingo scales to multiple GPUs with KnightKing-style 1-D partitioning: vertices
are assigned to devices, each device owns the out-edges (and the per-vertex
sampling structures) of its vertices, and walkers migrate between devices when
a step crosses a partition boundary.  The simulated multi-device walk engine
in :mod:`repro.gpu.multi_device` consumes these partitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.graph.dynamic_graph import DynamicGraph
from repro.utils.validation import check_positive_int


@dataclass
class OneDimPartition:
    """Assignment of vertices to ``num_parts`` devices.

    Attributes
    ----------
    num_parts:
        Number of partitions (simulated devices).
    owner:
        ``owner[v]`` is the partition that owns vertex ``v``.
    vertices:
        ``vertices[p]`` lists the vertices owned by partition ``p``.
    """

    num_parts: int
    owner: List[int]
    vertices: List[List[int]]

    def part_of(self, vertex: int) -> int:
        """Partition owning ``vertex``."""
        return self.owner[vertex]

    def edge_cut(self, graph: DynamicGraph) -> int:
        """Number of arcs whose endpoints live on different partitions.

        Each such arc forces one walker transfer per traversal in the
        multi-device model.
        """
        cut = 0
        for edge in graph.edges():
            if self.owner[edge.src] != self.owner[edge.dst]:
                cut += 1
        return cut

    def balance(self, graph: DynamicGraph) -> float:
        """Load imbalance: max part arc-count divided by the mean (1.0 = perfect)."""
        loads = [0] * self.num_parts
        for edge in graph.edges():
            loads[self.owner[edge.src]] += 1
        total = sum(loads)
        if total == 0:
            return 1.0
        mean = total / self.num_parts
        return max(loads) / mean if mean else 1.0


def partition_graph(
    graph: DynamicGraph,
    num_parts: int,
    *,
    strategy: str = "contiguous",
) -> OneDimPartition:
    """Partition the vertex set into ``num_parts`` groups.

    Strategies
    ----------
    ``contiguous``
        Consecutive vertex ranges balanced by arc count (the KnightKing /
        Bingo 1-D layout).
    ``round_robin``
        Vertex ``v`` goes to partition ``v % num_parts``; a degree-oblivious
        baseline useful for comparing edge cuts.
    """
    check_positive_int(num_parts, "num_parts")
    n = graph.num_vertices
    owner = [0] * n

    if strategy == "round_robin":
        for vertex in range(n):
            owner[vertex] = vertex % num_parts
    elif strategy == "contiguous":
        degrees = [graph.degree(v) for v in range(n)]
        total = sum(degrees)
        target = total / num_parts if num_parts else 0.0
        part = 0
        accumulated = 0
        for vertex in range(n):
            owner[vertex] = part
            accumulated += degrees[vertex]
            if accumulated >= target * (part + 1) and part < num_parts - 1:
                part += 1
    else:
        raise ValueError(f"unknown partitioning strategy {strategy!r}")

    vertices: List[List[int]] = [[] for _ in range(num_parts)]
    for vertex, part in enumerate(owner):
        vertices[part].append(vertex)
    return OneDimPartition(num_parts=num_parts, owner=owner, vertices=vertices)
