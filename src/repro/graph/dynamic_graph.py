"""A dynamic, weighted, directed adjacency structure.

The paper builds Bingo on Hornet-style dynamic arrays: each vertex owns a
growable neighbour list, edge deletion swaps the victim with the tail so the
list stays compact, and a per-vertex index maps destination → position for
O(1) lookup.  This module reproduces those semantics on the host; the
simulated-GPU dynamic arrays in :mod:`repro.gpu.dynamic_array` model the
device-side counterpart used for memory accounting.

Undirected graphs are represented as two directed arcs sharing one logical
edge, which matches how the evaluation datasets are ingested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import (
    DuplicateEdgeError,
    EdgeNotFoundError,
    VertexNotFoundError,
)
from repro.utils.validation import check_bias, check_non_negative_int

Number = float


@dataclass(frozen=True)
class Edge:
    """A single directed edge with its sampling bias."""

    src: int
    dst: int
    bias: Number

    def reversed(self) -> "Edge":
        """The same edge pointing the opposite way (used for undirected input)."""
        return Edge(self.dst, self.src, self.bias)


class _VertexAdjacency:
    """Per-vertex growable neighbour list with O(1) delete via swap-with-last."""

    __slots__ = ("dsts", "biases", "position")

    def __init__(self) -> None:
        self.dsts: List[int] = []
        self.biases: List[Number] = []
        # destination vertex -> index inside `dsts`/`biases`
        self.position: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self.dsts)

    def add(self, dst: int, bias: Number) -> int:
        index = len(self.dsts)
        self.dsts.append(dst)
        self.biases.append(bias)
        self.position[dst] = index
        return index

    def remove(self, dst: int) -> Tuple[int, Number, Optional[int]]:
        """Remove ``dst`` and return (removed_index, removed_bias, moved_dst).

        ``moved_dst`` is the destination that was relocated from the tail into
        ``removed_index`` (``None`` when the victim was already the tail).
        """
        index = self.position.pop(dst)
        bias = self.biases[index]
        last = len(self.dsts) - 1
        moved: Optional[int] = None
        if index != last:
            moved = self.dsts[last]
            self.dsts[index] = moved
            self.biases[index] = self.biases[last]
            self.position[moved] = index
        self.dsts.pop()
        self.biases.pop()
        return index, bias, moved

    def set_bias(self, dst: int, bias: Number) -> Number:
        index = self.position[dst]
        old = self.biases[index]
        self.biases[index] = bias
        return old


class DynamicGraph:
    """A mutable weighted directed graph with integer vertex identifiers.

    Vertices are numbered ``0 .. num_vertices - 1``.  The structure supports:

    * O(1) amortised edge insertion,
    * O(1) edge deletion (swap-with-last inside the neighbour list),
    * O(1) bias lookup / update,
    * iteration over out-neighbours in list order (the order Bingo's
      intra-group structures reference by *neighbour index*).

    Parameters
    ----------
    num_vertices:
        Initial number of vertices.  Further vertices can be added with
        :meth:`add_vertex` / :meth:`add_vertices`.
    undirected:
        When ``True`` each :meth:`add_edge` inserts both arcs and each
        :meth:`remove_edge` removes both.
    """

    def __init__(self, num_vertices: int = 0, *, undirected: bool = False) -> None:
        check_non_negative_int(num_vertices, "num_vertices")
        self._adjacency: List[_VertexAdjacency] = [
            _VertexAdjacency() for _ in range(num_vertices)
        ]
        self._undirected = bool(undirected)
        self._num_edges = 0

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int, Number]],
        *,
        num_vertices: Optional[int] = None,
        undirected: bool = False,
    ) -> "DynamicGraph":
        """Build a graph from an iterable of ``(src, dst, bias)`` triples."""
        edge_list = [(int(s), int(d), b) for s, d, b in edges]
        if num_vertices is None:
            highest = -1
            for src, dst, _ in edge_list:
                highest = max(highest, src, dst)
            num_vertices = highest + 1
        graph = cls(num_vertices, undirected=undirected)
        for src, dst, bias in edge_list:
            graph.add_edge(src, dst, bias)
        return graph

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def undirected(self) -> bool:
        """Whether edges are mirrored automatically."""
        return self._undirected

    @property
    def num_vertices(self) -> int:
        """Number of vertices currently in the graph."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of logical edges (an undirected edge counts once)."""
        return self._num_edges

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs stored internally."""
        return sum(len(adj) for adj in self._adjacency)

    def __contains__(self, vertex: int) -> bool:
        return 0 <= vertex < len(self._adjacency)

    def _check_vertex(self, vertex: int) -> None:
        if not (0 <= vertex < len(self._adjacency)):
            raise VertexNotFoundError(vertex)

    # ------------------------------------------------------------------ #
    # vertex operations
    # ------------------------------------------------------------------ #
    def add_vertex(self) -> int:
        """Append a new isolated vertex and return its identifier."""
        self._adjacency.append(_VertexAdjacency())
        return len(self._adjacency) - 1

    def add_vertices(self, count: int) -> List[int]:
        """Append ``count`` new isolated vertices and return their identifiers."""
        check_non_negative_int(count, "count")
        start = len(self._adjacency)
        self._adjacency.extend(_VertexAdjacency() for _ in range(count))
        return list(range(start, start + count))

    def ensure_vertex(self, vertex: int) -> None:
        """Grow the vertex set (if needed) so that ``vertex`` exists."""
        check_non_negative_int(vertex, "vertex")
        while vertex >= len(self._adjacency):
            self._adjacency.append(_VertexAdjacency())

    def isolate_vertex(self, vertex: int) -> List[Edge]:
        """Remove every edge incident to ``vertex`` and return the removed edges.

        This implements *vertex deletion* in terms of edge deletions, as the
        paper notes (Section 4.2): the vertex identifier itself remains valid
        but becomes isolated.
        """
        self._check_vertex(vertex)
        removed: List[Edge] = []
        for dst in list(self._adjacency[vertex].position):
            bias = self.edge_bias(vertex, dst)
            self.remove_edge(vertex, dst)
            removed.append(Edge(vertex, dst, bias))
        if not self._undirected:
            # Remove incoming arcs as well by scanning sources; directed
            # deletion of in-edges is inherently O(V) without an in-index.
            for src in range(len(self._adjacency)):
                if src == vertex:
                    continue
                if self.has_edge(src, vertex):
                    bias = self.edge_bias(src, vertex)
                    self.remove_edge(src, vertex)
                    removed.append(Edge(src, vertex, bias))
        return removed

    # ------------------------------------------------------------------ #
    # edge operations
    # ------------------------------------------------------------------ #
    def has_edge(self, src: int, dst: int) -> bool:
        """Whether the arc ``src -> dst`` exists."""
        self._check_vertex(src)
        self._check_vertex(dst)
        return dst in self._adjacency[src].position

    def add_edge(self, src: int, dst: int, bias: Number = 1.0) -> None:
        """Insert an edge with the given bias.

        Raises
        ------
        DuplicateEdgeError
            If the edge already exists.  Use :meth:`update_bias` to change an
            existing edge's bias.
        """
        self._check_vertex(src)
        self._check_vertex(dst)
        check_bias(bias)
        if dst in self._adjacency[src].position:
            raise DuplicateEdgeError(src, dst)
        self._adjacency[src].add(dst, bias)
        if self._undirected and src != dst:
            if src in self._adjacency[dst].position:
                raise DuplicateEdgeError(dst, src)
            self._adjacency[dst].add(src, bias)
        self._num_edges += 1

    def remove_edge(self, src: int, dst: int) -> Number:
        """Delete an edge and return its bias.

        Raises
        ------
        EdgeNotFoundError
            If the edge does not exist.
        """
        self._check_vertex(src)
        self._check_vertex(dst)
        if dst not in self._adjacency[src].position:
            raise EdgeNotFoundError(src, dst)
        _, bias, _ = self._adjacency[src].remove(dst)
        if self._undirected and src != dst:
            self._adjacency[dst].remove(src)
        self._num_edges -= 1
        return bias

    def update_bias(self, src: int, dst: int, bias: Number) -> Number:
        """Change the bias of an existing edge, returning the previous value."""
        self._check_vertex(src)
        self._check_vertex(dst)
        check_bias(bias)
        if dst not in self._adjacency[src].position:
            raise EdgeNotFoundError(src, dst)
        old = self._adjacency[src].set_bias(dst, bias)
        if self._undirected and src != dst:
            self._adjacency[dst].set_bias(src, bias)
        return old

    def edge_bias(self, src: int, dst: int) -> Number:
        """The bias of an existing edge."""
        self._check_vertex(src)
        self._check_vertex(dst)
        adjacency = self._adjacency[src]
        if dst not in adjacency.position:
            raise EdgeNotFoundError(src, dst)
        return adjacency.biases[adjacency.position[dst]]

    # ------------------------------------------------------------------ #
    # neighbour access
    # ------------------------------------------------------------------ #
    def degree(self, vertex: int) -> int:
        """Out-degree of ``vertex``."""
        self._check_vertex(vertex)
        return len(self._adjacency[vertex])

    def neighbors(self, vertex: int) -> Sequence[int]:
        """Out-neighbours of ``vertex`` in neighbour-list order."""
        self._check_vertex(vertex)
        return list(self._adjacency[vertex].dsts)

    def neighbor_biases(self, vertex: int) -> Sequence[Number]:
        """Biases aligned with :meth:`neighbors`."""
        self._check_vertex(vertex)
        return list(self._adjacency[vertex].biases)

    def neighbor_at(self, vertex: int, index: int) -> Tuple[int, Number]:
        """The ``(destination, bias)`` stored at neighbour-list position ``index``."""
        self._check_vertex(vertex)
        adjacency = self._adjacency[vertex]
        if not (0 <= index < len(adjacency)):
            raise IndexError(f"neighbor index {index} out of range for vertex {vertex}")
        return adjacency.dsts[index], adjacency.biases[index]

    def neighbor_index(self, src: int, dst: int) -> int:
        """Position of ``dst`` inside ``src``'s neighbour list."""
        self._check_vertex(src)
        self._check_vertex(dst)
        adjacency = self._adjacency[src]
        if dst not in adjacency.position:
            raise EdgeNotFoundError(src, dst)
        return adjacency.position[dst]

    def out_edges(self, vertex: int) -> Iterator[Edge]:
        """Iterate the out-edges of ``vertex``."""
        self._check_vertex(vertex)
        adjacency = self._adjacency[vertex]
        for dst, bias in zip(adjacency.dsts, adjacency.biases):
            yield Edge(vertex, dst, bias)

    def edges(self) -> Iterator[Edge]:
        """Iterate every stored arc (both directions for undirected graphs)."""
        for src in range(len(self._adjacency)):
            yield from self.out_edges(src)

    def total_bias(self, vertex: int) -> Number:
        """Sum of biases of the out-edges of ``vertex``."""
        self._check_vertex(vertex)
        return sum(self._adjacency[vertex].biases)

    def max_degree(self) -> int:
        """Largest out-degree in the graph (0 for an empty graph)."""
        if not self._adjacency:
            return 0
        return max(len(adj) for adj in self._adjacency)

    def average_degree(self) -> float:
        """Mean out-degree (counting arcs)."""
        if not self._adjacency:
            return 0.0
        return self.num_arcs / len(self._adjacency)

    # ------------------------------------------------------------------ #
    # snapshots and copies
    # ------------------------------------------------------------------ #
    def copy(self) -> "DynamicGraph":
        """A deep copy of the graph."""
        clone = DynamicGraph(self.num_vertices, undirected=False)
        for edge in self.edges():
            clone._adjacency[edge.src].add(edge.dst, edge.bias)
        clone._undirected = self._undirected
        clone._num_edges = self._num_edges
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "undirected" if self._undirected else "directed"
        return (
            f"DynamicGraph({kind}, vertices={self.num_vertices}, "
            f"edges={self.num_edges})"
        )
