"""A dynamic, weighted, directed adjacency structure on columnar storage.

The paper builds Bingo on Hornet-style dynamic arrays: each vertex owns a
growable neighbour list, edge deletion swaps the victim with the tail so the
list stays compact, and a per-vertex index maps destination → position for
O(1) lookup.  This module reproduces those semantics on the host with a
*columnar* NumPy layout — per-vertex capacity-doubling ``int64`` destination
and ``float64`` bias arrays — so bulk ingestion and the vectorized walk
kernels operate on contiguous memory instead of Python lists.  The
simulated-GPU dynamic arrays in :mod:`repro.gpu.dynamic_array` model the
device-side counterpart used for memory accounting.

Two access tiers are exposed:

* the legacy scalar API (:meth:`DynamicGraph.add_edge`,
  :meth:`DynamicGraph.remove_edge`, :meth:`DynamicGraph.neighbors`, ...)
  with unchanged semantics, and
* zero-copy array views (:meth:`DynamicGraph.neighbor_array` /
  :meth:`DynamicGraph.bias_array`) plus bulk mutators
  (:meth:`DynamicGraph.add_edges_bulk` /
  :meth:`DynamicGraph.remove_edges_bulk`) that apply a whole per-vertex
  update slice with vectorized membership validation — the substrate of the
  batched ingestion pipeline.

Undirected graphs are represented as two directed arcs sharing one logical
edge, which matches how the evaluation datasets are ingested.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import (
    DuplicateEdgeError,
    EdgeNotFoundError,
    VertexNotFoundError,
)
from repro.utils.validation import check_bias, check_non_negative_int

Number = float

#: First non-zero capacity of a vertex's neighbour arrays.
_MIN_CAPACITY = 4

#: Below this many edges a bulk membership probe walks the position index
#: (O(b) dict lookups); at or above it, one vectorized ``np.isin`` wins.
_ISIN_THRESHOLD = 16

_EMPTY_DSTS = np.empty(0, dtype=np.int64)
_EMPTY_BIASES = np.empty(0, dtype=np.float64)


def _first_duplicate(values: list[int]) -> int:
    """The first value appearing twice in ``values`` (caller guarantees one)."""
    seen = set()
    for value in values:
        if value in seen:
            return value
        seen.add(value)
    return values[-1]  # pragma: no cover - unreachable under the guarantee


@dataclass(frozen=True)
class Edge:
    """A single directed edge with its sampling bias."""

    src: int
    dst: int
    bias: Number

    def reversed(self) -> Edge:
        """The same edge pointing the opposite way (used for undirected input)."""
        return Edge(self.dst, self.src, self.bias)


class _VertexAdjacency:
    """Per-vertex columnar neighbour store with O(1) delete via swap-with-last.

    ``dsts``/``biases`` are capacity arrays; only the first ``size`` entries
    are live.  ``position`` maps destination → live index.
    """

    __slots__ = ("dsts", "biases", "size", "position")

    def __init__(self) -> None:
        self.dsts: np.ndarray = _EMPTY_DSTS
        self.biases: np.ndarray = _EMPTY_BIASES
        self.size: int = 0
        # destination vertex -> index inside the live prefix of `dsts`/`biases`
        self.position: dict[int, int] = {}

    def __len__(self) -> int:
        return self.size

    # -------------------------------------------------------------- #
    def _grow(self, needed: int) -> None:
        """Capacity-double (Hornet-style) until ``needed`` entries fit."""
        capacity = len(self.dsts)
        if needed <= capacity:
            return
        new_capacity = max(_MIN_CAPACITY, capacity)
        while new_capacity < needed:
            new_capacity *= 2
        dsts = np.empty(new_capacity, dtype=np.int64)
        biases = np.empty(new_capacity, dtype=np.float64)
        dsts[: self.size] = self.dsts[: self.size]
        biases[: self.size] = self.biases[: self.size]
        self.dsts = dsts
        self.biases = biases

    def dst_view(self) -> np.ndarray:
        """Zero-copy view of the live destinations."""
        return self.dsts[: self.size]

    def bias_view(self) -> np.ndarray:
        """Zero-copy view of the live biases."""
        return self.biases[: self.size]

    # -------------------------------------------------------------- #
    def add(self, dst: int, bias: Number) -> int:
        index = self.size
        self._grow(index + 1)
        self.dsts[index] = dst
        self.biases[index] = bias
        self.position[dst] = index
        self.size = index + 1
        return index

    def add_many(self, dsts: np.ndarray, biases: np.ndarray) -> None:
        """Append a whole slice of new destinations in order."""
        count = len(dsts)
        if count == 0:
            return
        start = self.size
        self._grow(start + count)
        self.dsts[start : start + count] = dsts
        self.biases[start : start + count] = biases
        self.position.update(zip(dsts.tolist(), range(start, start + count)))
        self.size = start + count

    def remove(self, dst: int) -> tuple[int, Number, int | None]:
        """Remove ``dst`` and return (removed_index, removed_bias, moved_dst).

        ``moved_dst`` is the destination that was relocated from the tail into
        ``removed_index`` (``None`` when the victim was already the tail).
        """
        index = self.position.pop(dst)
        bias = float(self.biases[index])
        last = self.size - 1
        moved: int | None = None
        if index != last:
            moved = int(self.dsts[last])
            self.dsts[index] = moved
            self.biases[index] = self.biases[last]
            self.position[moved] = index
        self.size = last
        return index, bias, moved

    def set_bias(self, dst: int, bias: Number) -> Number:
        index = self.position[dst]
        old = float(self.biases[index])
        self.biases[index] = bias
        return old

    def contains_many(self, dsts: np.ndarray) -> np.ndarray:
        """Vectorized membership test: which of ``dsts`` are live neighbours."""
        if self.size == 0 or len(dsts) == 0:
            return np.zeros(len(dsts), dtype=bool)
        if len(dsts) < _ISIN_THRESHOLD:
            position = self.position
            return np.fromiter(
                (dst in position for dst in dsts.tolist()),
                dtype=bool,
                count=len(dsts),
            )
        return np.isin(dsts, self.dst_view())

    def copy(self) -> _VertexAdjacency:
        clone = _VertexAdjacency()
        if self.size:
            clone.dsts = self.dsts[: self.size].copy()
            clone.biases = self.biases[: self.size].copy()
            clone.size = self.size
            clone.position = dict(self.position)
        return clone


class DynamicGraph:
    """A mutable weighted directed graph with integer vertex identifiers.

    Vertices are numbered ``0 .. num_vertices - 1``.  The structure supports:

    * O(1) amortised edge insertion (scalar or bulk),
    * O(1) edge deletion (swap-with-last inside the neighbour array),
    * O(1) bias lookup / update,
    * zero-copy NumPy views of each vertex's neighbour/bias columns,
    * iteration over out-neighbours in array order (the order Bingo's
      intra-group structures reference by *neighbour index*).

    Parameters
    ----------
    num_vertices:
        Initial number of vertices.  Further vertices can be added with
        :meth:`add_vertex` / :meth:`add_vertices`.
    undirected:
        When ``True`` each :meth:`add_edge` inserts both arcs and each
        :meth:`remove_edge` removes both.
    """

    def __init__(self, num_vertices: int = 0, *, undirected: bool = False) -> None:
        check_non_negative_int(num_vertices, "num_vertices")
        self._adjacency: list[_VertexAdjacency] = [
            _VertexAdjacency() for _ in range(num_vertices)
        ]
        self._undirected = bool(undirected)
        self._num_edges = 0

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int, Number]],
        *,
        num_vertices: int | None = None,
        undirected: bool = False,
    ) -> DynamicGraph:
        """Build a graph from an iterable of ``(src, dst, bias)`` triples."""
        edge_list = [(int(s), int(d), b) for s, d, b in edges]
        if num_vertices is None:
            highest = -1
            for src, dst, _ in edge_list:
                highest = max(highest, src, dst)
            num_vertices = highest + 1
        graph = cls(num_vertices, undirected=undirected)
        for src, dst, bias in edge_list:
            graph.add_edge(src, dst, bias)
        return graph

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def undirected(self) -> bool:
        """Whether edges are mirrored automatically."""
        return self._undirected

    @property
    def num_vertices(self) -> int:
        """Number of vertices currently in the graph."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of logical edges (an undirected edge counts once)."""
        return self._num_edges

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs stored internally."""
        return sum(adj.size for adj in self._adjacency)

    def __contains__(self, vertex: int) -> bool:
        return 0 <= vertex < len(self._adjacency)

    def _check_vertex(self, vertex: int) -> None:
        if not (0 <= vertex < len(self._adjacency)):
            raise VertexNotFoundError(vertex)

    # ------------------------------------------------------------------ #
    # vertex operations
    # ------------------------------------------------------------------ #
    def add_vertex(self) -> int:
        """Append a new isolated vertex and return its identifier."""
        self._adjacency.append(_VertexAdjacency())
        return len(self._adjacency) - 1

    def add_vertices(self, count: int) -> list[int]:
        """Append ``count`` new isolated vertices and return their identifiers."""
        check_non_negative_int(count, "count")
        start = len(self._adjacency)
        self._adjacency.extend(_VertexAdjacency() for _ in range(count))
        return list(range(start, start + count))

    def ensure_vertex(self, vertex: int) -> None:
        """Grow the vertex set (if needed) so that ``vertex`` exists."""
        check_non_negative_int(vertex, "vertex")
        while vertex >= len(self._adjacency):
            self._adjacency.append(_VertexAdjacency())

    def ensure_vertices(self, highest: int) -> None:
        """Grow the vertex set so every id up to ``highest`` exists (bulk form)."""
        check_non_negative_int(highest, "highest")
        missing = highest + 1 - len(self._adjacency)
        if missing > 0:
            self._adjacency.extend(_VertexAdjacency() for _ in range(missing))

    def isolate_vertex(self, vertex: int) -> list[Edge]:
        """Remove every edge incident to ``vertex`` and return the removed edges.

        This implements *vertex deletion* in terms of edge deletions, as the
        paper notes (Section 4.2): the vertex identifier itself remains valid
        but becomes isolated.
        """
        self._check_vertex(vertex)
        removed: list[Edge] = []
        for dst in list(self._adjacency[vertex].position):
            bias = self.edge_bias(vertex, dst)
            self.remove_edge(vertex, dst)
            removed.append(Edge(vertex, dst, bias))
        if not self._undirected:
            # Remove incoming arcs as well by scanning sources; directed
            # deletion of in-edges is inherently O(V) without an in-index.
            for src in range(len(self._adjacency)):
                if src == vertex:
                    continue
                if self.has_edge(src, vertex):
                    bias = self.edge_bias(src, vertex)
                    self.remove_edge(src, vertex)
                    removed.append(Edge(src, vertex, bias))
        return removed

    # ------------------------------------------------------------------ #
    # edge operations
    # ------------------------------------------------------------------ #
    def has_edge(self, src: int, dst: int) -> bool:
        """Whether the arc ``src -> dst`` exists."""
        self._check_vertex(src)
        self._check_vertex(dst)
        return dst in self._adjacency[src].position

    def has_edges(self, src: int, dsts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`has_edge` for a slice of destinations of ``src``.

        Returns a boolean array aligned with ``dsts``; destinations outside
        the current vertex range are simply reported absent (bulk callers
        probe edges toward vertices the batch is about to create).
        """
        self._check_vertex(src)
        dsts = np.ascontiguousarray(dsts, dtype=np.int64)
        return self._adjacency[src].contains_many(dsts)

    def add_edge(self, src: int, dst: int, bias: Number = 1.0) -> None:
        """Insert an edge with the given bias.

        Raises
        ------
        DuplicateEdgeError
            If the edge already exists.  Use :meth:`update_bias` to change an
            existing edge's bias.
        """
        self._check_vertex(src)
        self._check_vertex(dst)
        check_bias(bias)
        if dst in self._adjacency[src].position:
            raise DuplicateEdgeError(src, dst)
        self._adjacency[src].add(dst, bias)
        if self._undirected and src != dst:
            if src in self._adjacency[dst].position:
                raise DuplicateEdgeError(dst, src)
            self._adjacency[dst].add(src, bias)
        self._num_edges += 1

    def remove_edge(self, src: int, dst: int) -> Number:
        """Delete an edge and return its bias.

        Raises
        ------
        EdgeNotFoundError
            If the edge does not exist.
        """
        self._check_vertex(src)
        self._check_vertex(dst)
        if dst not in self._adjacency[src].position:
            raise EdgeNotFoundError(src, dst)
        _, bias, _ = self._adjacency[src].remove(dst)
        if self._undirected and src != dst:
            self._adjacency[dst].remove(src)
        self._num_edges -= 1
        return bias

    # ------------------------------------------------------------------ #
    # bulk edge operations (the batched-ingestion fast path)
    # ------------------------------------------------------------------ #
    def add_edges_bulk(
        self,
        src: int,
        dsts: np.ndarray,
        biases: np.ndarray,
    ) -> None:
        """Insert a whole slice of out-edges of ``src`` in one pass.

        Equivalent to calling :meth:`add_edge` for each ``(src, dsts[i],
        biases[i])`` in order — including the resulting neighbour-array order
        — but with vectorized validation: one membership check against the
        live neighbour column instead of one dictionary probe per edge.

        Raises the same errors as the scalar path: ``VertexNotFoundError``
        for out-of-range endpoints, ``InvalidBiasError`` for non-positive or
        non-finite biases, ``DuplicateEdgeError`` when any destination is
        already a neighbour (or appears twice in the slice).
        """
        self._check_vertex(src)
        dsts = np.ascontiguousarray(dsts, dtype=np.int64)
        biases = np.ascontiguousarray(biases, dtype=np.float64)
        count = len(dsts)
        if count == 0:
            return
        if len(biases) != count:
            raise ValueError("dsts and biases must have matching lengths")
        if count == 1:
            # Bulk slices of one edge are common; skip the vectorized checks.
            self.add_edge(src, int(dsts[0]), float(biases[0]))
            return
        limit = len(self._adjacency)
        adjacency = self._adjacency[src]
        if count < _ISIN_THRESHOLD:
            # Small slices: direct index probes beat the vectorized checks.
            dst_list = dsts.tolist()
            position = adjacency.position
            for dst in dst_list:
                if not 0 <= dst < limit:
                    raise VertexNotFoundError(dst)
                if dst in position:
                    raise DuplicateEdgeError(src, dst)
            if len(set(dst_list)) != count:
                raise DuplicateEdgeError(src, _first_duplicate(dst_list))
            for bias in biases.tolist():
                check_bias(bias)
        else:
            if int(dsts.max()) >= limit or int(dsts.min()) < 0:
                bad = dsts[(dsts >= limit) | (dsts < 0)][0]
                raise VertexNotFoundError(int(bad))
            finite = np.isfinite(biases)
            if not finite.all() or (biases[finite] <= 0).any():
                bad_bias = biases[~(finite & (biases > 0))][0]
                check_bias(float(bad_bias))  # raises InvalidBiasError
            present = adjacency.contains_many(dsts)
            if present.any():
                raise DuplicateEdgeError(src, int(dsts[present][0]))
            unique, counts = np.unique(dsts, return_counts=True)
            if (counts > 1).any():
                raise DuplicateEdgeError(src, int(unique[counts > 1][0]))
        adjacency.add_many(dsts, biases)
        if self._undirected:
            for dst, bias in zip(dsts.tolist(), biases.tolist()):
                if dst == src:
                    continue
                mirror = self._adjacency[dst]
                if src in mirror.position:
                    raise DuplicateEdgeError(dst, src)
                mirror.add(src, bias)
        self._num_edges += count

    def remove_edges_bulk(self, src: int, dsts: np.ndarray) -> np.ndarray:
        """Delete a whole slice of out-edges of ``src`` and return their biases.

        Deletions are applied with the same swap-with-last workflow — in
        slice order — as repeated :meth:`remove_edge` calls, so the surviving
        neighbour-array order is identical to the scalar path.  Membership of
        the entire slice is validated up front in one vectorized check.
        """
        self._check_vertex(src)
        dsts = np.ascontiguousarray(dsts, dtype=np.int64)
        count = len(dsts)
        if count == 0:
            return np.empty(0, dtype=np.float64)
        adjacency = self._adjacency[src]
        dst_list = dsts.tolist()
        if count > 1:
            if count < _ISIN_THRESHOLD:
                position = adjacency.position
                for dst in dst_list:
                    if dst not in position:
                        raise EdgeNotFoundError(src, dst)
                if len(set(dst_list)) != count:
                    # The second removal of a duplicate would miss.
                    raise EdgeNotFoundError(src, _first_duplicate(dst_list))
            else:
                present = adjacency.contains_many(dsts)
                if not present.all():
                    raise EdgeNotFoundError(src, int(dsts[~present][0]))
                unique, counts = np.unique(dsts, return_counts=True)
                if (counts > 1).any():
                    raise EdgeNotFoundError(src, int(unique[counts > 1][0]))
        elif dst_list[0] not in adjacency.position:
            raise EdgeNotFoundError(src, dst_list[0])
        removed = np.empty(count, dtype=np.float64)
        undirected = self._undirected
        for slot, dst in enumerate(dst_list):
            _, bias, _ = adjacency.remove(dst)
            removed[slot] = bias
            if undirected and dst != src:
                self._adjacency[dst].remove(src)
        self._num_edges -= count
        return removed

    def update_bias(self, src: int, dst: int, bias: Number) -> Number:
        """Change the bias of an existing edge, returning the previous value."""
        self._check_vertex(src)
        self._check_vertex(dst)
        check_bias(bias)
        if dst not in self._adjacency[src].position:
            raise EdgeNotFoundError(src, dst)
        old = self._adjacency[src].set_bias(dst, bias)
        if self._undirected and src != dst:
            self._adjacency[dst].set_bias(src, bias)
        return old

    def edge_bias(self, src: int, dst: int) -> Number:
        """The bias of an existing edge."""
        self._check_vertex(src)
        self._check_vertex(dst)
        adjacency = self._adjacency[src]
        if dst not in adjacency.position:
            raise EdgeNotFoundError(src, dst)
        return float(adjacency.biases[adjacency.position[dst]])

    # ------------------------------------------------------------------ #
    # neighbour access
    # ------------------------------------------------------------------ #
    def degree(self, vertex: int) -> int:
        """Out-degree of ``vertex``."""
        self._check_vertex(vertex)
        return self._adjacency[vertex].size

    def neighbors(self, vertex: int) -> Sequence[int]:
        """Out-neighbours of ``vertex`` in neighbour-array order (a copy)."""
        self._check_vertex(vertex)
        return self._adjacency[vertex].dst_view().tolist()

    def neighbor_biases(self, vertex: int) -> Sequence[Number]:
        """Biases aligned with :meth:`neighbors` (a copy)."""
        self._check_vertex(vertex)
        return self._adjacency[vertex].bias_view().tolist()

    def neighbor_array(self, vertex: int) -> np.ndarray:
        """Zero-copy ``int64`` view of the live destination column.

        The view aliases the graph's storage: it is invalidated by any
        mutation of ``vertex``'s out-edges (a capacity growth reallocates,
        a delete rewrites the tail in place).  Callers that need a stable
        snapshot must copy.
        """
        self._check_vertex(vertex)
        return self._adjacency[vertex].dst_view()

    def bias_array(self, vertex: int) -> np.ndarray:
        """Zero-copy ``float64`` view of the live bias column.

        Same aliasing caveat as :meth:`neighbor_array`.
        """
        self._check_vertex(vertex)
        return self._adjacency[vertex].bias_view()

    def neighbor_at(self, vertex: int, index: int) -> tuple[int, Number]:
        """The ``(destination, bias)`` stored at neighbour-array position ``index``."""
        self._check_vertex(vertex)
        adjacency = self._adjacency[vertex]
        if not (0 <= index < adjacency.size):
            raise IndexError(f"neighbor index {index} out of range for vertex {vertex}")
        return int(adjacency.dsts[index]), float(adjacency.biases[index])

    def neighbor_index(self, src: int, dst: int) -> int:
        """Position of ``dst`` inside ``src``'s neighbour array."""
        self._check_vertex(src)
        self._check_vertex(dst)
        adjacency = self._adjacency[src]
        if dst not in adjacency.position:
            raise EdgeNotFoundError(src, dst)
        return adjacency.position[dst]

    def out_edges(self, vertex: int) -> Iterator[Edge]:
        """Iterate the out-edges of ``vertex``."""
        self._check_vertex(vertex)
        adjacency = self._adjacency[vertex]
        for dst, bias in zip(
            adjacency.dst_view().tolist(), adjacency.bias_view().tolist()
        ):
            yield Edge(vertex, dst, bias)

    def edges(self) -> Iterator[Edge]:
        """Iterate every stored arc (both directions for undirected graphs)."""
        for src in range(len(self._adjacency)):
            yield from self.out_edges(src)

    def total_bias(self, vertex: int) -> Number:
        """Sum of biases of the out-edges of ``vertex``."""
        self._check_vertex(vertex)
        return float(self._adjacency[vertex].bias_view().sum())

    def max_degree(self) -> int:
        """Largest out-degree in the graph (0 for an empty graph)."""
        if not self._adjacency:
            return 0
        return max(adj.size for adj in self._adjacency)

    def average_degree(self) -> float:
        """Mean out-degree (counting arcs)."""
        if not self._adjacency:
            return 0.0
        return self.num_arcs / len(self._adjacency)

    # ------------------------------------------------------------------ #
    # snapshots and copies
    # ------------------------------------------------------------------ #
    def copy(self) -> DynamicGraph:
        """A deep copy of the graph (column arrays are copied compactly)."""
        clone = DynamicGraph(0, undirected=False)
        clone._adjacency = [adj.copy() for adj in self._adjacency]
        clone._undirected = self._undirected
        clone._num_edges = self._num_edges
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "undirected" if self._undirected else "directed"
        return (
            f"DynamicGraph({kind}, vertices={self.num_vertices}, "
            f"edges={self.num_edges})"
        )
