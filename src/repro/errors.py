"""Exception hierarchy for the Bingo reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without accidentally swallowing unrelated
exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Base class for errors raised by the dynamic graph substrate."""


class VertexNotFoundError(GraphError):
    """Raised when an operation references a vertex that does not exist."""

    def __init__(self, vertex: int) -> None:
        super().__init__(f"vertex {vertex} does not exist in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError):
    """Raised when an operation references an edge that does not exist."""

    def __init__(self, src: int, dst: int) -> None:
        super().__init__(f"edge ({src}, {dst}) does not exist in the graph")
        self.src = src
        self.dst = dst


class DuplicateEdgeError(GraphError):
    """Raised when inserting an edge that already exists and duplicates are disallowed."""

    def __init__(self, src: int, dst: int) -> None:
        super().__init__(f"edge ({src}, {dst}) already exists in the graph")
        self.src = src
        self.dst = dst


class InvalidBiasError(ReproError):
    """Raised when an edge bias is not a positive, finite number."""

    def __init__(self, bias: object) -> None:
        super().__init__(f"bias must be a positive finite number, got {bias!r}")
        self.bias = bias


class SamplerError(ReproError):
    """Base class for errors raised by sampling structures."""


class EmptySamplerError(SamplerError):
    """Raised when sampling from a sampler that holds no candidates."""


class SamplerStateError(SamplerError):
    """Raised when a sampler structure is internally inconsistent."""


class EngineError(ReproError):
    """Base class for errors raised by random walk engines."""


class UnsupportedApplicationError(EngineError):
    """Raised when an engine is asked to run an application it does not support."""

    def __init__(self, application: str, engine: str) -> None:
        super().__init__(f"engine {engine!r} does not support application {application!r}")
        self.application = application
        self.engine = engine


class UpdateError(EngineError):
    """Raised when a graph update cannot be applied."""


class DeviceError(ReproError):
    """Base class for errors raised by the simulated GPU runtime."""


class OutOfDeviceMemoryError(DeviceError):
    """Raised when the simulated device cannot satisfy an allocation request."""

    def __init__(self, requested: int, available: int) -> None:
        super().__init__(
            f"simulated device out of memory: requested {requested} bytes, "
            f"only {available} available"
        )
        self.requested = requested
        self.available = available


class BenchmarkError(ReproError):
    """Raised when a benchmark experiment is mis-configured."""


class ParallelExecutionError(ReproError):
    """Raised when the shard-parallel walk runner or one of its workers fails."""


class WorkerCrashError(ParallelExecutionError):
    """Raised when a shard worker process died while a walk run needed it.

    The runner detects the dead process on the hand-off wait instead of
    blocking forever; the pool itself stays up, so callers can
    :meth:`~repro.walks.parallel.ParallelWalkRunner.respawn_dead_workers`
    and retry the run against the fresh pool.
    """

    def __init__(self, shard: int) -> None:
        super().__init__(
            f"shard worker {shard} died mid-run; respawn the pool and retry"
        )
        self.shard = shard


class ServeError(ReproError):
    """Raised when the streaming serve layer is misused or has failed.

    Covers submissions to a closed :class:`~repro.serve.GraphService`,
    writer-thread failures surfaced on :meth:`~repro.serve.GraphService.flush`,
    and query tickets that were cancelled or timed out.  The subclasses
    below let the HTTP front-end map failures onto status codes without
    string matching; ``except ServeError`` still catches everything.
    """


class QueryValidationError(ServeError):
    """Raised when a walk query is rejected at the serve boundary.

    Covers start vertices outside the serving snapshot, negative ids,
    non-integral start arrays, and malformed query parameters.
    """


class QuotaExceededError(ServeError):
    """Raised when a tenant's bounded query queue is full."""


class ServiceClosedError(ServeError):
    """Raised when work is submitted to (or cancelled by) a closed service."""


class QueryTimeoutError(ServeError):
    """Raised when waiting on a query ticket exceeds the caller's timeout."""


class QueryExpiredError(ServeError):
    """Raised when a query's deadline passed before the dispatcher fused it.

    Drop-on-expiry: a stale query is failed *before* it joins a fused wave
    instead of burning walk-kernel time on an answer nobody is waiting
    for.  The HTTP front-end maps this onto ``504`` with a ``Retry-After``
    header.
    """


class InjectedFault(ServeError):
    """An exception deliberately raised by the chaos fault-injection layer.

    Carries the injection point and the occurrence index that fired, so a
    chaos run's failure log can be matched 1:1 against its
    :class:`~repro.serve.faults.FaultPlan`.
    """

    def __init__(self, point: str, index: int, message: str = "") -> None:
        detail = f" ({message})" if message else ""
        super().__init__(
            f"injected fault at {point!r} occurrence {index}{detail}"
        )
        self.point = point
        self.index = index
