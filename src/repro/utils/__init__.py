"""Shared helpers: random number management, validation, timing."""

from repro.utils.rng import RandomSource, ensure_rng, spawn_rng
from repro.utils.validation import (
    check_bias,
    check_non_negative_int,
    check_positive_int,
    check_probability,
)
from repro.utils.timing import Stopwatch, TimeBreakdown

__all__ = [
    "RandomSource",
    "ensure_rng",
    "spawn_rng",
    "check_bias",
    "check_non_negative_int",
    "check_positive_int",
    "check_probability",
    "Stopwatch",
    "TimeBreakdown",
]
