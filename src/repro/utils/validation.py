"""Argument validation helpers shared across the library."""

from __future__ import annotations

import math

from repro.errors import InvalidBiasError

Number = int | float


def check_bias(bias: Number) -> Number:
    """Validate that ``bias`` is a positive, finite number and return it.

    Biases of zero are rejected: a zero-bias edge can never be sampled and the
    radix decomposition of zero is empty, so callers should simply delete the
    edge instead.
    """
    if isinstance(bias, bool) or not isinstance(bias, (int, float)):
        raise InvalidBiasError(bias)
    if not math.isfinite(bias) or bias <= 0:
        raise InvalidBiasError(bias)
    return bias


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value)!r}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative_int(value: int, name: str) -> int:
    """Validate that ``value`` is a non-negative integer."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value)!r}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {type(value)!r}")
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value}")
    return float(value)
