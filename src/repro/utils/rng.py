"""Random-number utilities.

All stochastic components in the library accept either an integer seed, an
existing :class:`random.Random`, or ``None`` (fresh nondeterministic state).
Centralising the coercion here keeps every sampler, generator, and engine
reproducible from a single seed.
"""

from __future__ import annotations

import random
from typing import Optional, Union

RandomSource = Union[int, random.Random, None]


def ensure_rng(source: RandomSource = None) -> random.Random:
    """Coerce ``source`` into a :class:`random.Random` instance.

    Parameters
    ----------
    source:
        ``None`` for nondeterministic state, an ``int`` seed, or an existing
        ``random.Random`` which is returned unchanged.
    """
    if source is None:
        return random.Random()
    if isinstance(source, random.Random):
        return source
    if isinstance(source, bool):  # bool is an int subclass; reject it explicitly.
        raise TypeError("rng seed must be an int, random.Random, or None")
    if isinstance(source, int):
        return random.Random(source)
    raise TypeError(f"rng source must be an int, random.Random, or None, got {type(source)!r}")


def spawn_rng(rng: random.Random, stream: int) -> random.Random:
    """Derive an independent child generator from ``rng``.

    Used to give each walker or each simulated thread block its own stream so
    that parallel-order differences do not change results.
    """
    seed = (rng.getrandbits(48) << 16) ^ (stream & 0xFFFF)
    return random.Random(seed)
