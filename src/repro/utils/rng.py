"""Random-number utilities.

All stochastic components in the library accept either an integer seed, an
existing :class:`random.Random`, or ``None`` (fresh nondeterministic state).
Centralising the coercion here keeps every sampler, generator, and engine
reproducible from a single seed.

The vectorized (batched) sampling kernels draw from NumPy generators
instead; :func:`ensure_np_rng` provides the same coercion for
:class:`numpy.random.Generator` sources.
"""

from __future__ import annotations

import random

import numpy as np

RandomSource = int | random.Random | None

NumpySource = int | np.random.Generator | None

#: Anything coerce_np_rng accepts: Python or NumPy generator, seed, or None.
AnyRngSource = int | random.Random | np.random.Generator | None


def ensure_rng(source: RandomSource = None) -> random.Random:
    """Coerce ``source`` into a :class:`random.Random` instance.

    Parameters
    ----------
    source:
        ``None`` for nondeterministic state, an ``int`` seed, or an existing
        ``random.Random`` which is returned unchanged.
    """
    if source is None:
        return random.Random()
    if isinstance(source, random.Random):
        return source
    if isinstance(source, bool):  # bool is an int subclass; reject it explicitly.
        raise TypeError("rng seed must be an int, random.Random, or None")
    if isinstance(source, int):
        return random.Random(source)
    raise TypeError(f"rng source must be an int, random.Random, or None, got {type(source)!r}")


def spawn_rng(rng: random.Random, stream: int) -> random.Random:
    """Derive an independent child generator from ``rng``.

    Used to give each walker or each simulated thread block its own stream so
    that parallel-order differences do not change results.
    """
    seed = (rng.getrandbits(48) << 16) ^ (stream & 0xFFFF)
    return random.Random(seed)


def ensure_np_rng(source: NumpySource = None) -> np.random.Generator:
    """Coerce ``source`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    source:
        ``None`` for nondeterministic state, an ``int`` seed, or an existing
        ``numpy.random.Generator`` which is returned unchanged.
    """
    if source is None:
        return np.random.default_rng()
    if isinstance(source, np.random.Generator):
        return source
    if isinstance(source, bool):
        raise TypeError("numpy rng seed must be an int, Generator, or None")
    if isinstance(source, (int, np.integer)):
        return np.random.default_rng(int(source))
    raise TypeError(
        f"numpy rng source must be an int, Generator, or None, got {type(source)!r}"
    )


def spawn_np_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child NumPy generator from ``rng``."""
    seed = (int(rng.integers(0, 1 << 48)) << 16) ^ (stream & 0xFFFF)
    return np.random.default_rng(seed)


def coerce_np_rng(source: RandomSource | NumpySource) -> np.random.Generator:
    """Coerce *any* accepted rng source into a :class:`numpy.random.Generator`.

    Accepts everything :func:`ensure_np_rng` does, plus a
    :class:`random.Random`, from which a NumPy generator is derived
    deterministically (so callers holding a Python generator — the harness,
    the scalar walk paths — can seed the batched frontier reproducibly).
    """
    if isinstance(source, random.Random):
        return np.random.default_rng(source.getrandbits(64))
    return ensure_np_rng(source)
