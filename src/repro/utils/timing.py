"""Lightweight timing helpers used by engines and the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Iterator
from contextlib import contextmanager


class Stopwatch:
    """A resettable stopwatch measuring wall-clock seconds."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def reset(self) -> None:
        """Restart the stopwatch."""
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds elapsed since construction or the last :meth:`reset`."""
        return time.perf_counter() - self._start


@dataclass
class TimeBreakdown:
    """Accumulates wall-clock time per named phase.

    Engines use this to produce the piecewise breakdowns of Figures 13 and 16
    (insert/delete vs. rebuild vs. sampling time).
    """

    phases: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, phase: str) -> Iterator[None]:
        """Context manager adding the elapsed time of the block to ``phase``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.phases[phase] = self.phases.get(phase, 0.0) + (time.perf_counter() - start)

    def add(self, phase: str, seconds: float) -> None:
        """Add ``seconds`` to ``phase`` directly."""
        self.phases[phase] = self.phases.get(phase, 0.0) + seconds

    def get(self, phase: str) -> float:
        """Total seconds recorded for ``phase`` (0.0 if never measured)."""
        return self.phases.get(phase, 0.0)

    def total(self) -> float:
        """Sum of all recorded phases."""
        return sum(self.phases.values())

    def merge(self, other: TimeBreakdown) -> None:
        """Fold another breakdown into this one."""
        for phase, seconds in other.phases.items():
            self.add(phase, seconds)

    def as_dict(self) -> dict[str, float]:
        """Return a copy of the phase table."""
        return dict(self.phases)


class PhaseTimer:
    """A reusable round-aware phase timer for multi-round harness runs.

    :class:`TimeBreakdown` only accumulates, so a harness that reused one
    instance across rounds and reported ``as_dict()`` per round double-counted
    every earlier round in every later summary (skewing the fig13 breakdown
    on multi-round runs).  ``PhaseTimer`` separates the two scopes:
    :meth:`measure` adds to the *current round*, :meth:`finish_round` returns
    that round's summary and folds it into the cumulative totals, so the same
    timer instance can be reused round after round without inflation.
    """

    def __init__(self) -> None:
        self._round = TimeBreakdown()
        self._totals = TimeBreakdown()
        self.rounds_finished = 0

    @contextmanager
    def measure(self, phase: str) -> Iterator[None]:
        """Context manager timing one block into the current round."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self._round.add(phase, time.perf_counter() - start)

    def add(self, phase: str, seconds: float) -> None:
        """Add ``seconds`` to ``phase`` in the current round directly."""
        self._round.add(phase, seconds)

    def round_so_far(self) -> dict[str, float]:
        """The current (unfinished) round's phase table."""
        return self._round.as_dict()

    def finish_round(self) -> dict[str, float]:
        """Close the current round: return its summary, reset it, keep totals."""
        summary = self._round.as_dict()
        self._totals.merge(self._round)
        self._round = TimeBreakdown()
        self.rounds_finished += 1
        return summary

    def totals(self) -> dict[str, float]:
        """Cumulative phase table across finished rounds plus the open one."""
        combined = TimeBreakdown(phases=self._totals.as_dict())
        combined.merge(self._round)
        return combined.as_dict()

    def total_seconds(self) -> float:
        """Sum of every phase across all rounds."""
        return sum(self.totals().values())
