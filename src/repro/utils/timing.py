"""Lightweight timing helpers used by engines and the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator
from contextlib import contextmanager


class Stopwatch:
    """A resettable stopwatch measuring wall-clock seconds."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def reset(self) -> None:
        """Restart the stopwatch."""
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds elapsed since construction or the last :meth:`reset`."""
        return time.perf_counter() - self._start


@dataclass
class TimeBreakdown:
    """Accumulates wall-clock time per named phase.

    Engines use this to produce the piecewise breakdowns of Figures 13 and 16
    (insert/delete vs. rebuild vs. sampling time).
    """

    phases: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, phase: str) -> Iterator[None]:
        """Context manager adding the elapsed time of the block to ``phase``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.phases[phase] = self.phases.get(phase, 0.0) + (time.perf_counter() - start)

    def add(self, phase: str, seconds: float) -> None:
        """Add ``seconds`` to ``phase`` directly."""
        self.phases[phase] = self.phases.get(phase, 0.0) + seconds

    def get(self, phase: str) -> float:
        """Total seconds recorded for ``phase`` (0.0 if never measured)."""
        return self.phases.get(phase, 0.0)

    def total(self) -> float:
        """Sum of all recorded phases."""
        return sum(self.phases.values())

    def merge(self, other: "TimeBreakdown") -> None:
        """Fold another breakdown into this one."""
        for phase, seconds in other.phases.items():
            self.add(phase, seconds)

    def as_dict(self) -> Dict[str, float]:
        """Return a copy of the phase table."""
        return dict(self.phases)
