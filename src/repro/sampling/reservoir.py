"""Weighted reservoir sampling (the FlowWalker approach).

FlowWalker performs every sampling step by streaming over the neighbour list
with an exponential-jump weighted reservoir (Efraimidis–Spirakis style): no
auxiliary per-vertex structure is kept, so graph updates are free, but each
sample touches all d neighbours — the O(d) sampling cost the paper's Figure 16
attributes to FlowWalker's slowdown on high-degree graphs.
"""

from __future__ import annotations

import math

from repro.errors import EmptySamplerError, SamplerStateError
from repro.sampling.base import DynamicSampler, SamplerKind
from repro.sampling.cost_model import OperationCounter
from repro.utils.rng import RandomSource
from repro.utils.validation import check_bias

_FLOAT_BYTES = 8
_INT_BYTES = 8


class WeightedReservoirSampler(DynamicSampler):
    """Structure-free weighted sampler scanning the candidate list per draw."""

    kind = SamplerKind.RESERVOIR

    def __init__(self, *, rng: RandomSource = None, counter: OperationCounter | None = None) -> None:
        super().__init__(rng=rng, counter=counter)
        self._ids: list[int] = []
        self._biases: list[float] = []
        self._index: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # mutation — O(1), there is nothing to maintain
    # ------------------------------------------------------------------ #
    def insert(self, candidate: int, bias: float) -> None:
        check_bias(bias)
        if candidate in self._index:
            raise SamplerStateError(f"candidate {candidate} already present")
        self._index[candidate] = len(self._ids)
        self._ids.append(candidate)
        self._biases.append(float(bias))
        self.counter.touch(2)

    def delete(self, candidate: int) -> None:
        if candidate not in self._index:
            raise SamplerStateError(f"candidate {candidate} not present")
        position = self._index.pop(candidate)
        last = len(self._ids) - 1
        if position != last:
            moved = self._ids[last]
            self._ids[position] = moved
            self._biases[position] = self._biases[last]
            self._index[moved] = position
        self._ids.pop()
        self._biases.pop()
        self.counter.touch(3)

    def update_bias(self, candidate: int, bias: float) -> None:
        check_bias(bias)
        if candidate not in self._index:
            raise SamplerStateError(f"candidate {candidate} not present")
        self._biases[self._index[candidate]] = float(bias)
        self.counter.touch(1)

    # ------------------------------------------------------------------ #
    # sampling — one pass over all candidates (A-Res keys)
    # ------------------------------------------------------------------ #
    def sample(self) -> int:
        if not self._ids:
            raise EmptySamplerError("reservoir sampler holds no candidates")
        best_key = -math.inf
        best_id = self._ids[0]
        for candidate, bias in zip(self._ids, self._biases):
            u = self._rng.random()
            # Efraimidis–Spirakis key: u^(1/w); use log for numerical stability.
            key = math.log(u) / bias if u > 0.0 else -math.inf
            self.counter.draw(1)
            self.counter.arith(2)
            self.counter.compare(1)
            self.counter.touch(1)
            if key > best_key:
                best_key = key
                best_id = candidate
        return best_id

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._ids)

    def candidates(self) -> list[tuple[int, float]]:
        return list(zip(self._ids, self._biases))

    def total_bias(self) -> float:
        return float(sum(self._biases))

    def memory_bytes(self) -> int:
        # Only the candidate arrays themselves; no auxiliary structure.
        count = len(self._ids)
        return count * (_INT_BYTES + _FLOAT_BYTES)
