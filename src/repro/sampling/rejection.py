"""Rejection sampling as a dynamic sampler.

Rejection sampling keeps no auxiliary structure beyond the candidate array
and the maximum bias, so insertions and deletions are O(1).  Its weakness —
the one Table 1 records — is that expected sampling cost is
``d * max(w) / Σw`` trials, which blows up for skewed bias distributions.
KnightKing uses this scheme for the dynamic (second-order) component of
node2vec, and Bingo's dense-group intra-group sampling also uses a bounded
variant of it.
"""

from __future__ import annotations


import numpy as np

from repro.errors import EmptySamplerError, SamplerStateError
from repro.sampling.base import DynamicSampler, SamplerKind
from repro.sampling.cost_model import OperationCounter
from repro.utils.rng import NumpySource, RandomSource, ensure_np_rng
from repro.utils.validation import check_bias

_FLOAT_BYTES = 8
_INT_BYTES = 8


class RejectionSampler(DynamicSampler):
    """Uniform-propose / bias-accept rejection sampler.

    The acceptance envelope is the running maximum bias.  Deletions do not
    shrink the envelope (recomputing the maximum would cost O(d)); the
    envelope is lazily tightened only when a full rescan happens anyway.
    This mirrors how practical systems (e.g. KnightKing) manage the bound.
    """

    kind = SamplerKind.REJECTION

    def __init__(
        self,
        *,
        rng: RandomSource = None,
        counter: OperationCounter | None = None,
        max_trials: int = 1_000_000,
    ) -> None:
        super().__init__(rng=rng, counter=counter)
        self._ids: list[int] = []
        self._biases: list[float] = []
        self._index: dict[int, int] = {}
        self._max_bias = 0.0
        self._max_trials = int(max_trials)
        self.trial_count = 0
        self.accept_count = 0

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def insert(self, candidate: int, bias: float) -> None:
        check_bias(bias)
        if candidate in self._index:
            raise SamplerStateError(f"candidate {candidate} already present")
        self._index[candidate] = len(self._ids)
        self._ids.append(candidate)
        self._biases.append(float(bias))
        if bias > self._max_bias:
            self._max_bias = float(bias)
        self.counter.touch(2)
        self.counter.compare(1)

    def delete(self, candidate: int) -> None:
        if candidate not in self._index:
            raise SamplerStateError(f"candidate {candidate} not present")
        position = self._index.pop(candidate)
        last = len(self._ids) - 1
        if position != last:
            moved = self._ids[last]
            self._ids[position] = moved
            self._biases[position] = self._biases[last]
            self._index[moved] = position
        self._ids.pop()
        self._biases.pop()
        self.counter.touch(3)

    def update_bias(self, candidate: int, bias: float) -> None:
        check_bias(bias)
        if candidate not in self._index:
            raise SamplerStateError(f"candidate {candidate} not present")
        self._biases[self._index[candidate]] = float(bias)
        if bias > self._max_bias:
            self._max_bias = float(bias)
        self.counter.touch(1)
        self.counter.compare(1)

    def tighten_envelope(self) -> None:
        """Recompute the acceptance envelope as the true maximum bias (O(d))."""
        self._max_bias = max(self._biases) if self._biases else 0.0
        self.counter.touch(len(self._biases))

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def sample(self) -> int:
        if not self._ids:
            raise EmptySamplerError("rejection sampler holds no candidates")
        count = len(self._ids)
        envelope = self._max_bias
        for _ in range(self._max_trials):
            position = self._rng.randrange(count)
            threshold = self._rng.random() * envelope
            self.counter.draw(2)
            self.counter.touch(1)
            self.counter.compare(1)
            self.trial_count += 1
            if threshold < self._biases[position]:
                self.accept_count += 1
                return self._ids[position]
        raise SamplerStateError(
            f"rejection sampling did not accept within {self._max_trials} trials"
        )

    def sample_batch(self, count: int, rng: NumpySource = None) -> np.ndarray:
        """Draw ``count`` candidates with a vectorized rejection loop.

        All still-pending draws propose in one round: a vector of uniform
        positions and a vector of thresholds, accepted where the threshold
        falls below the proposed bias.  Rounds repeat only for the rejected
        remainder, so the expected work stays ``count * d * max(w) / Σw``
        proposals — identical to the scalar loop, minus the interpreter.
        """
        if not self._ids:
            raise EmptySamplerError("rejection sampler holds no candidates")
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        generator = ensure_np_rng(rng)
        ids = np.asarray(self._ids, dtype=np.int64)
        biases = np.asarray(self._biases, dtype=np.float64)
        envelope = self._max_bias
        out = np.empty(count, dtype=np.int64)
        pending = np.arange(count)
        for _ in range(self._max_trials):
            proposals = generator.integers(0, len(ids), size=len(pending))
            thresholds = generator.random(len(pending)) * envelope
            self.counter.draw(2 * len(pending))
            self.counter.touch(len(pending))
            self.counter.compare(len(pending))
            self.trial_count += len(pending)
            accepted = thresholds < biases[proposals]
            self.accept_count += int(accepted.sum())
            out[pending[accepted]] = ids[proposals[accepted]]
            pending = pending[~accepted]
            if len(pending) == 0:
                return out
        raise SamplerStateError(
            f"rejection sampling did not accept within {self._max_trials} trials"
        )

    def acceptance_rate(self) -> float:
        """Observed acceptance rate since construction (1.0 when no trials yet)."""
        if self.trial_count == 0:
            return 1.0
        return self.accept_count / self.trial_count

    def expected_trials(self) -> float:
        """Theoretical expected trials per sample: d * max(w) / Σw."""
        total = self.total_bias()
        if total <= 0:
            return 0.0
        return len(self._ids) * self._max_bias / total

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._ids)

    def candidates(self) -> list[tuple[int, float]]:
        return list(zip(self._ids, self._biases))

    def total_bias(self) -> float:
        return float(sum(self._biases))

    def memory_bytes(self) -> int:
        count = len(self._ids)
        return count * (_INT_BYTES + _FLOAT_BYTES) + count * _INT_BYTES + _FLOAT_BYTES
