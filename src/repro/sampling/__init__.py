"""Monte Carlo sampling structures.

These are the classical per-vertex samplers Section 2.3 reviews and Table 1
compares against Bingo:

* :class:`~repro.sampling.alias.AliasTable` — Vose alias method, O(1) sampling,
  O(d) (re)construction.
* :class:`~repro.sampling.its.InverseTransformSampler` — CDF + binary search,
  O(log d) sampling, O(d) construction, O(1) append-only insertion.
* :class:`~repro.sampling.rejection.RejectionSampler` — O(1) updates, sampling
  cost governed by the bias skew (d * max(w) / Σw expected trials).
* :class:`~repro.sampling.reservoir.WeightedReservoirSampler` — the
  FlowWalker-style structure-free sampler, O(d) per sample.

All of them implement the :class:`~repro.sampling.base.DynamicSampler`
protocol, so the engines and benchmarks can swap them freely, and all of them
report elementary-operation counts through
:class:`~repro.sampling.cost_model.OperationCounter` so the Table 1 complexity
benchmark can fit measured costs against the published asymptotics.
"""

from repro.sampling.base import DynamicSampler, SamplerKind
from repro.sampling.alias import AliasTable
from repro.sampling.its import InverseTransformSampler
from repro.sampling.rejection import RejectionSampler
from repro.sampling.reservoir import WeightedReservoirSampler
from repro.sampling.cost_model import OperationCounter, OperationCosts

__all__ = [
    "DynamicSampler",
    "SamplerKind",
    "AliasTable",
    "InverseTransformSampler",
    "RejectionSampler",
    "WeightedReservoirSampler",
    "OperationCounter",
    "OperationCosts",
]
