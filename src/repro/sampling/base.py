"""Common protocol for per-vertex dynamic samplers.

A *sampler* owns the candidate set of one vertex: the list of (neighbour,
bias) pairs a walker standing at that vertex chooses from.  The protocol
exposes exactly the operations Table 1 compares — sample, insert, delete,
bias update — plus introspection used by tests (exact probabilities, memory
accounting, candidate enumeration).
"""

from __future__ import annotations

import abc
import enum
from collections.abc import Iterable

from repro.sampling.cost_model import OperationCounter
from repro.utils.rng import RandomSource, ensure_rng


class SamplerKind(str, enum.Enum):
    """Identifiers for the sampler families compared in the paper."""

    BINGO = "bingo"
    ALIAS = "alias"
    ITS = "its"
    REJECTION = "rejection"
    RESERVOIR = "reservoir"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class DynamicSampler(abc.ABC):
    """Abstract per-vertex biased sampler with dynamic updates.

    Candidates are identified by arbitrary hashable IDs (the engines use the
    neighbour vertex ID).  Implementations must keep ``counter`` updated so
    the complexity benchmarks can observe their work.
    """

    kind: SamplerKind

    def __init__(self, *, rng: RandomSource = None, counter: OperationCounter | None = None) -> None:
        self._rng = ensure_rng(rng)
        self.counter = counter if counter is not None else OperationCounter()

    # ------------------------------------------------------------------ #
    # the Table 1 operations
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def sample(self) -> int:
        """Draw one candidate ID according to the bias distribution."""

    @abc.abstractmethod
    def insert(self, candidate: int, bias: float) -> None:
        """Add a candidate with the given bias."""

    @abc.abstractmethod
    def delete(self, candidate: int) -> None:
        """Remove a candidate."""

    def update_bias(self, candidate: int, bias: float) -> None:
        """Change a candidate's bias (default: delete + insert)."""
        self.delete(candidate)
        self.insert(candidate, bias)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of candidates currently held."""

    @abc.abstractmethod
    def candidates(self) -> list[tuple[int, float]]:
        """The current ``(candidate, bias)`` pairs (order unspecified)."""

    @abc.abstractmethod
    def total_bias(self) -> float:
        """Sum of all candidate biases."""

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Modelled memory footprint of the auxiliary structures, in bytes."""

    def contains(self, candidate: int) -> bool:
        """Whether ``candidate`` is currently held."""
        return any(existing == candidate for existing, _ in self.candidates())

    def exact_probabilities(self) -> dict[int, float]:
        """The exact selection probability of every candidate.

        Used by correctness tests to check Theorem 4.1-style invariants
        without relying on Monte Carlo convergence.
        """
        total = self.total_bias()
        if total <= 0:
            return {}
        return {candidate: bias / total for candidate, bias in self.candidates()}

    def empirical_distribution(self, draws: int) -> dict[int, float]:
        """Empirical selection frequencies over ``draws`` samples."""
        counts: dict[int, int] = {}
        for _ in range(draws):
            candidate = self.sample()
            counts[candidate] = counts.get(candidate, 0) + 1
        return {candidate: count / draws for candidate, count in counts.items()}

    # ------------------------------------------------------------------ #
    # bulk construction helper
    # ------------------------------------------------------------------ #
    @classmethod
    def from_candidates(
        cls,
        pairs: Iterable[tuple[int, float]],
        *,
        rng: RandomSource = None,
        counter: OperationCounter | None = None,
        **kwargs,
    ) -> DynamicSampler:
        """Build a sampler pre-populated with ``pairs``."""
        sampler = cls(rng=rng, counter=counter, **kwargs)
        for candidate, bias in pairs:
            sampler.insert(candidate, bias)
        return sampler
