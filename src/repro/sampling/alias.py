"""The alias method (Walker/Vose) as a dynamic sampler.

The alias table delivers O(1) sampling but any bias change requires a full
O(d) rebuild, which is exactly the weakness Bingo's radix factorization
attacks (Table 1, row "Alias Method").  The engine emulating KnightKing uses
this structure per vertex and rebuilds it on every update.
"""

from __future__ import annotations


import numpy as np

from repro.errors import EmptySamplerError, SamplerStateError
from repro.sampling.base import DynamicSampler, SamplerKind
from repro.sampling.cost_model import OperationCounter
from repro.utils.rng import NumpySource, RandomSource, ensure_np_rng, ensure_rng
from repro.utils.validation import check_bias

_FLOAT_BYTES = 8
_INT_BYTES = 8


class AliasTable(DynamicSampler):
    """Vose's alias method over a dynamic candidate set.

    The candidate list is kept as parallel arrays; every structural change
    marks the alias table dirty and the next :meth:`sample` (or an explicit
    :meth:`rebuild`) reconstructs it in O(d).
    """

    kind = SamplerKind.ALIAS

    def __init__(self, *, rng: RandomSource = None, counter: OperationCounter | None = None) -> None:
        super().__init__(rng=rng, counter=counter)
        self._ids: list[int] = []
        self._biases: list[float] = []
        self._index: dict[int, int] = {}
        self._prob: list[float] = []
        self._alias: list[int] = []
        self._dirty = True
        self.rebuild_count = 0
        # NumPy mirrors of the alias arrays, built lazily for sample_batch.
        self._np_arrays: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    @classmethod
    def from_built(
        cls,
        ids: list[int],
        biases: list[float],
        prob: list[float],
        alias: list[int],
        *,
        rng: RandomSource = None,
        counter: OperationCounter | None = None,
    ) -> AliasTable:
        """Adopt prebuilt alias arrays (the batched-rebuild fast path).

        ``prob``/``alias`` must be exactly what :meth:`rebuild` would produce
        for the given candidates — e.g. the output of
        :func:`repro.core.batch_rebuild.batch_vose` — so a table adopted here
        is indistinguishable from one built by the scalar path.  The lists
        are adopted *by reference* (one table is assembled per touched vertex
        per batch); callers must not mutate them afterwards.  Empty inputs
        yield an empty, still-dirty table, matching a freshly constructed one.
        """
        table = cls.__new__(cls)
        table._rng = ensure_rng(rng)
        table.counter = counter if counter is not None else OperationCounter()
        table._ids = ids
        table._biases = biases
        table._index = dict(zip(ids, range(len(ids))))
        table._prob = prob
        table._alias = alias
        table._dirty = not ids
        table.rebuild_count = 1 if ids else 0
        table._np_arrays = None
        return table

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def insert(self, candidate: int, bias: float) -> None:
        check_bias(bias)
        if candidate in self._index:
            raise SamplerStateError(f"candidate {candidate} already present")
        self._index[candidate] = len(self._ids)
        self._ids.append(candidate)
        self._biases.append(float(bias))
        self._dirty = True
        self.counter.touch(2)

    def insert_many(self, candidates, biases) -> None:
        """Bulk insert (same state as repeated :meth:`insert`, one pass).

        Validation runs vectorized over the slice; the candidate arrays are
        extended in order, so the table is indistinguishable from one built
        with scalar inserts.
        """
        candidates = np.ascontiguousarray(candidates, dtype=np.int64)
        biases = np.ascontiguousarray(biases, dtype=np.float64)
        count = len(candidates)
        if count == 0:
            return
        if len(biases) != count:
            raise SamplerStateError("candidates and biases must have matching lengths")
        finite = np.isfinite(biases)
        if not finite.all() or (biases[finite] <= 0).any():
            check_bias(float(biases[~(finite & (biases > 0))][0]))
        candidate_list = candidates.tolist()
        index = self._index
        for candidate in candidate_list:
            if candidate in index:
                raise SamplerStateError(f"candidate {candidate} already present")
        if len(set(candidate_list)) != count:
            raise SamplerStateError("duplicate candidates within one insert_many slice")
        start = len(self._ids)
        index.update(zip(candidate_list, range(start, start + count)))
        self._ids.extend(candidate_list)
        self._biases.extend(biases.tolist())
        self._dirty = True
        self.counter.touch(2 * count)

    def delete(self, candidate: int) -> None:
        if candidate not in self._index:
            raise SamplerStateError(f"candidate {candidate} not present")
        position = self._index.pop(candidate)
        last = len(self._ids) - 1
        if position != last:
            moved = self._ids[last]
            self._ids[position] = moved
            self._biases[position] = self._biases[last]
            self._index[moved] = position
        self._ids.pop()
        self._biases.pop()
        self._dirty = True
        self.counter.touch(3)

    def update_bias(self, candidate: int, bias: float) -> None:
        check_bias(bias)
        if candidate not in self._index:
            raise SamplerStateError(f"candidate {candidate} not present")
        self._biases[self._index[candidate]] = float(bias)
        self._dirty = True
        self.counter.touch(1)

    # ------------------------------------------------------------------ #
    # alias construction (Vose's O(d) algorithm)
    # ------------------------------------------------------------------ #
    def rebuild(self) -> None:
        """Reconstruct the alias table from the current candidate arrays."""
        count = len(self._ids)
        self.rebuild_count += 1
        if count == 0:
            self._prob = []
            self._alias = []
            self._dirty = False
            self._np_arrays = None
            return
        total = sum(self._biases)
        self.counter.arith(count)
        if total <= 0:
            raise SamplerStateError("total bias must be positive")

        scaled = [bias * count / total for bias in self._biases]
        self.counter.arith(count)
        small: list[int] = []
        large: list[int] = []
        for position, value in enumerate(scaled):
            self.counter.compare(1)
            if value < 1.0:
                small.append(position)
            else:
                large.append(position)

        prob = [0.0] * count
        alias = list(range(count))
        while small and large:
            small_index = small.pop()
            large_index = large.pop()
            prob[small_index] = scaled[small_index]
            alias[small_index] = large_index
            scaled[large_index] = scaled[large_index] + scaled[small_index] - 1.0
            self.counter.touch(4)
            self.counter.arith(2)
            self.counter.compare(1)
            if scaled[large_index] < 1.0:
                small.append(large_index)
            else:
                large.append(large_index)
        for remaining in large + small:
            prob[remaining] = 1.0
            self.counter.touch(1)

        self._prob = prob
        self._alias = alias
        self._dirty = False
        self._np_arrays = None

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def sample(self) -> int:
        if not self._ids:
            raise EmptySamplerError("alias table holds no candidates")
        if self._dirty:
            self.rebuild()
        bucket = self._rng.randrange(len(self._ids))
        toss = self._rng.random()
        self.counter.draw(2)
        self.counter.compare(1)
        self.counter.touch(2)
        if toss < self._prob[bucket]:
            return self._ids[bucket]
        return self._ids[self._alias[bucket]]

    def sample_batch(self, count: int, rng: NumpySource = None) -> np.ndarray:
        """Draw ``count`` candidates at once with the vectorized alias kernel.

        Semantically identical to ``count`` calls to :meth:`sample`: one
        uniform bucket and one toss per draw, resolved through the same
        prob/alias arrays.  Draws come from a NumPy generator so a whole
        walk frontier can consume one stream.
        """
        if not self._ids:
            raise EmptySamplerError("alias table holds no candidates")
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        generator = ensure_np_rng(rng)
        ids, prob, alias = self.numpy_tables()
        buckets = generator.integers(0, len(ids), size=count)
        toss = generator.random(count)
        self.counter.draw(2 * count)
        self.counter.compare(count)
        self.counter.touch(2 * count)
        chosen = np.where(toss < prob[buckets], buckets, alias[buckets])
        return ids[chosen]

    def numpy_tables(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The (ids, prob, alias) arrays as cached NumPy mirrors.

        Rebuilds first when dirty; used by :meth:`sample_batch` and by the
        Bingo vertex sampler's fused inter-group draw.
        """
        if self._dirty:
            self.rebuild()
        if self._np_arrays is None:
            self._np_arrays = (
                np.asarray(self._ids, dtype=np.int64),
                np.asarray(self._prob, dtype=np.float64),
                np.asarray(self._alias, dtype=np.int64),
            )
        return self._np_arrays

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._ids)

    def candidates(self) -> list[tuple[int, float]]:
        return list(zip(self._ids, self._biases))

    def total_bias(self) -> float:
        return float(sum(self._biases))

    def memory_bytes(self) -> int:
        count = len(self._ids)
        # ids + biases + prob + alias arrays, plus the position index.
        return count * (2 * _INT_BYTES + 2 * _FLOAT_BYTES) + count * 2 * _INT_BYTES

    def is_dirty(self) -> bool:
        """Whether the alias arrays are stale relative to the candidate set."""
        return self._dirty
