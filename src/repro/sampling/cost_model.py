"""Elementary-operation accounting for sampling structures.

Wall-clock timing of a pure-Python reproduction is dominated by interpreter
overhead, so the Table 1 complexity comparison is additionally reported in
*elementary operations*: memory touches, comparisons, random-number draws and
arithmetic steps.  Every sampler increments a shared
:class:`OperationCounter`; the benchmark harness fits the counts against the
published asymptotics (O(1), O(K), O(log d), O(d)).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OperationCounter:
    """Mutable counters for elementary operations performed by a sampler."""

    memory_touches: int = 0
    comparisons: int = 0
    random_draws: int = 0
    arithmetic_ops: int = 0

    def touch(self, count: int = 1) -> None:
        """Record ``count`` memory reads/writes."""
        self.memory_touches += count

    def compare(self, count: int = 1) -> None:
        """Record ``count`` comparisons."""
        self.comparisons += count

    def draw(self, count: int = 1) -> None:
        """Record ``count`` random-number generations."""
        self.random_draws += count

    def arith(self, count: int = 1) -> None:
        """Record ``count`` arithmetic operations."""
        self.arithmetic_ops += count

    def total(self) -> int:
        """Total elementary operations across categories."""
        return (
            self.memory_touches
            + self.comparisons
            + self.random_draws
            + self.arithmetic_ops
        )

    def reset(self) -> None:
        """Zero every counter."""
        self.memory_touches = 0
        self.comparisons = 0
        self.random_draws = 0
        self.arithmetic_ops = 0

    def snapshot(self) -> dict[str, int]:
        """A copy of the counters as a plain dict."""
        return {
            "memory_touches": self.memory_touches,
            "comparisons": self.comparisons,
            "random_draws": self.random_draws,
            "arithmetic_ops": self.arithmetic_ops,
            "total": self.total(),
        }


@dataclass
class OperationCosts:
    """Aggregated per-operation cost summary for one experiment.

    ``per_op`` maps an operation name (``"sample"``, ``"insert"``,
    ``"delete"``, ``"build"``) to the average number of elementary operations
    consumed per invocation.
    """

    per_op: dict[str, float] = field(default_factory=dict)

    def record(self, operation: str, ops: int, invocations: int) -> None:
        """Record that ``invocations`` calls of ``operation`` cost ``ops`` total."""
        if invocations <= 0:
            raise ValueError("invocations must be positive")
        self.per_op[operation] = ops / invocations

    def get(self, operation: str) -> float:
        """Average cost of ``operation`` (0.0 when never recorded)."""
        return self.per_op.get(operation, 0.0)
