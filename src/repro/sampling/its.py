"""Inverse Transform Sampling (ITS) as a dynamic sampler.

ITS keeps the prefix sums of candidate biases and binary-searches a uniform
draw in ``[0, total_bias)``.  Sampling is O(log d); append-only insertion is
O(1) amortised (extend the prefix-sum array); deleting or changing an interior
candidate invalidates every later prefix and costs O(d).  These are the
"ITS" row costs in Table 1, and the structure used by the gSampler-style
baseline engine.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.errors import EmptySamplerError, SamplerStateError
from repro.sampling.base import DynamicSampler, SamplerKind
from repro.sampling.cost_model import OperationCounter
from repro.utils.rng import NumpySource, RandomSource, ensure_np_rng
from repro.utils.validation import check_bias

_FLOAT_BYTES = 8
_INT_BYTES = 8


class InverseTransformSampler(DynamicSampler):
    """CDF (prefix-sum) sampler with binary search."""

    kind = SamplerKind.ITS

    def __init__(self, *, rng: RandomSource = None, counter: OperationCounter | None = None) -> None:
        super().__init__(rng=rng, counter=counter)
        self._ids: list[int] = []
        self._biases: list[float] = []
        self._index: dict[int, int] = {}
        self._cumulative: list[float] = []
        self._dirty = False
        # NumPy mirrors of (ids, cumulative), built lazily for sample_batch.
        self._np_arrays: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def insert(self, candidate: int, bias: float) -> None:
        check_bias(bias)
        if candidate in self._index:
            raise SamplerStateError(f"candidate {candidate} already present")
        self._index[candidate] = len(self._ids)
        self._ids.append(candidate)
        self._biases.append(float(bias))
        # Appending extends the prefix sums in O(1); no rebuild needed.
        previous = self._cumulative[-1] if self._cumulative else 0.0
        self._cumulative.append(previous + float(bias))
        self._np_arrays = None
        self.counter.touch(3)
        self.counter.arith(1)

    def insert_many(self, candidates, biases) -> None:
        """Bulk append-only insert (same state as repeated :meth:`insert`).

        The prefix sums are extended with one sequential ``np.cumsum`` seeded
        by the current running total, which accumulates left to right exactly
        like the scalar appends — the stored CDF is bit-identical.
        """
        candidates = np.ascontiguousarray(candidates, dtype=np.int64)
        biases = np.ascontiguousarray(biases, dtype=np.float64)
        count = len(candidates)
        if count == 0:
            return
        if len(biases) != count:
            raise SamplerStateError("candidates and biases must have matching lengths")
        finite = np.isfinite(biases)
        if not finite.all() or (biases[finite] <= 0).any():
            check_bias(float(biases[~(finite & (biases > 0))][0]))
        candidate_list = candidates.tolist()
        index = self._index
        for candidate in candidate_list:
            if candidate in index:
                raise SamplerStateError(f"candidate {candidate} already present")
        if len(set(candidate_list)) != count:
            raise SamplerStateError("duplicate candidates within one insert_many slice")
        start = len(self._ids)
        index.update(zip(candidate_list, range(start, start + count)))
        self._ids.extend(candidate_list)
        self._biases.extend(biases.tolist())
        previous = self._cumulative[-1] if self._cumulative else 0.0
        extended = np.cumsum(np.concatenate(([previous], biases)))
        self._cumulative.extend(extended[1:].tolist())
        self._np_arrays = None
        self.counter.touch(3 * count)
        self.counter.arith(count)

    def delete(self, candidate: int) -> None:
        if candidate not in self._index:
            raise SamplerStateError(f"candidate {candidate} not present")
        position = self._index.pop(candidate)
        self._ids.pop(position)
        self._biases.pop(position)
        for moved_position in range(position, len(self._ids)):
            self._index[self._ids[moved_position]] = moved_position
            self.counter.touch(1)
        self._dirty = True
        self.counter.touch(2)

    def update_bias(self, candidate: int, bias: float) -> None:
        check_bias(bias)
        if candidate not in self._index:
            raise SamplerStateError(f"candidate {candidate} not present")
        self._biases[self._index[candidate]] = float(bias)
        self._dirty = True
        self.counter.touch(1)

    # ------------------------------------------------------------------ #
    # CDF maintenance
    # ------------------------------------------------------------------ #
    def rebuild(self) -> None:
        """Recompute the prefix sums in O(d)."""
        running = 0.0
        cumulative: list[float] = []
        for bias in self._biases:
            running += bias
            cumulative.append(running)
            self.counter.arith(1)
            self.counter.touch(1)
        self._cumulative = cumulative
        self._dirty = False
        self._np_arrays = None

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def sample(self) -> int:
        if not self._ids:
            raise EmptySamplerError("ITS sampler holds no candidates")
        if self._dirty:
            self.rebuild()
        total = self._cumulative[-1]
        draw = self._rng.random() * total
        self.counter.draw(1)
        position = bisect.bisect_right(self._cumulative, draw)
        if position >= len(self._ids):
            position = len(self._ids) - 1
        # Binary search cost: ceil(log2(d)) comparisons.
        self.counter.compare(max(1, (len(self._ids)).bit_length()))
        self.counter.touch(1)
        return self._ids[position]

    def sample_batch(self, count: int, rng: NumpySource = None) -> np.ndarray:
        """Draw ``count`` candidates at once via vectorized binary search.

        One uniform per draw, searched in the shared prefix-sum array with a
        single :func:`numpy.searchsorted` call — the batched form of exactly
        the scalar :meth:`sample` procedure.
        """
        if not self._ids:
            raise EmptySamplerError("ITS sampler holds no candidates")
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        generator = ensure_np_rng(rng)
        ids, cumulative = self.numpy_tables()
        total = cumulative[-1]
        draws = generator.random(count) * total
        positions = np.searchsorted(cumulative, draws, side="right")
        np.clip(positions, 0, len(ids) - 1, out=positions)
        self.counter.draw(count)
        self.counter.compare(count * max(1, (len(self._ids)).bit_length()))
        self.counter.touch(count)
        return ids[positions]

    def numpy_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """The (ids, cumulative) arrays as cached NumPy mirrors.

        Rebuilds first when dirty; used by :meth:`sample_batch` and by the
        gSampler engine's fused frontier kernel.
        """
        if self._dirty:
            self.rebuild()
        if self._np_arrays is None:
            self._np_arrays = (
                np.asarray(self._ids, dtype=np.int64),
                np.asarray(self._cumulative, dtype=np.float64),
            )
        return self._np_arrays

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._ids)

    def candidates(self) -> list[tuple[int, float]]:
        return list(zip(self._ids, self._biases))

    def total_bias(self) -> float:
        return float(sum(self._biases))

    def memory_bytes(self) -> int:
        count = len(self._ids)
        return count * (_INT_BYTES + 2 * _FLOAT_BYTES) + count * _INT_BYTES

    def is_dirty(self) -> bool:
        """Whether the prefix sums are stale."""
        return self._dirty
