"""Random-walk engines: Bingo and the baseline systems it is compared against.

Every engine implements :class:`~repro.engines.base.RandomWalkEngine`:
build from a graph, ingest streaming or batched updates, answer first-order
biased neighbour samples, and report modelled memory plus a per-phase time
breakdown.  The Table 3 / Figure 12–16 benchmarks swap engines behind this
interface.
"""

from repro.engines.base import RandomWalkEngine
from repro.engines.bingo import BingoEngine
from repro.engines.knightking import KnightKingEngine
from repro.engines.gsampler import GSamplerEngine
from repro.engines.flowwalker import FlowWalkerEngine
from repro.engines.registry import ENGINE_REGISTRY, create_engine, engine_names

__all__ = [
    "RandomWalkEngine",
    "BingoEngine",
    "KnightKingEngine",
    "GSamplerEngine",
    "FlowWalkerEngine",
    "ENGINE_REGISTRY",
    "create_engine",
    "engine_names",
]
