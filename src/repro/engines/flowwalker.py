"""FlowWalker-style baseline: structure-free reservoir sampling.

FlowWalker (VLDB'24) keeps *no* per-vertex sampling structure: every step
runs a parallel weighted reservoir pass over the neighbour list.  Updates are
therefore nearly free (the paper's Figure 16a shows FlowWalker's reload being
slightly faster than Bingo's update), but each sample costs O(d), which is
exactly what makes it two-plus orders of magnitude slower on the high-degree
Twitter graph (Figure 16b, Table 3).
"""

from __future__ import annotations

import math
import time
from collections.abc import Sequence

import numpy as np

from repro.core.memory_model import MemoryReport
from repro.engines.base import PHASE_REBUILD, RandomWalkEngine
from repro.graph.update_batch import UpdateBatch
from repro.graph.update_stream import GraphUpdate, UpdateKind
from repro.utils.rng import RandomSource


class FlowWalkerEngine(RandomWalkEngine):
    """Reservoir-sampling engine: zero auxiliary state, O(d) per sample."""

    name = "flowwalker"
    supports_batch = True

    def __init__(self, *, rng: RandomSource = None) -> None:
        super().__init__(rng=rng)
        self.reload_count = 0

    # ------------------------------------------------------------------ #
    def _build_state(self) -> None:
        # Nothing to build: sampling scans the adjacency directly.
        self.reload_count += 1

    def _on_insert(self, src: int, dst: int, bias: float) -> None:
        # Graph mutation (done by the base class) is the whole update.
        return None

    def _on_delete(self, src: int, dst: int) -> None:
        return None

    def apply_batch(self, updates: Sequence[GraphUpdate]) -> None:
        """Apply the edits columnar (bulk per-vertex kind-runs), then reload."""
        batch = UpdateBatch.coerce(updates)
        self._apply_batch_to_graph(batch)
        # FlowWalker "reloads the new graph after updates": model that as a
        # single pass over the edited adjacency.
        start = time.perf_counter()
        self._build_state()
        self.breakdown.add(PHASE_REBUILD, time.perf_counter() - start)
        self.updates_applied += len(batch)

    def apply_batch_scalar(self, updates: Sequence[GraphUpdate]) -> None:
        """The legacy per-edge batch path (reference for equivalence tests)."""
        graph = self._require_graph()
        for update in updates:
            graph.ensure_vertex(update.src)
            graph.ensure_vertex(update.dst)
            if update.kind is UpdateKind.INSERT:
                graph.add_edge(update.src, update.dst, update.bias)
            else:
                graph.remove_edge(update.src, update.dst)
        start = time.perf_counter()
        self._build_state()
        self.breakdown.add(PHASE_REBUILD, time.perf_counter() - start)
        self.updates_applied += len(updates)

    # ------------------------------------------------------------------ #
    def _sample(self, vertex: int) -> int | None:
        graph = self._require_graph()
        if not (0 <= vertex < graph.num_vertices):
            # Out-of-range ids (retired-walker padding, vertices the walker
            # outlived) retire the walk like a sink instead of raising — the
            # behaviour every other engine already has.
            return None
        degree = graph.degree(vertex)
        if degree == 0:
            return None
        best_key = -math.inf
        best_dst: int | None = None
        # Efraimidis–Spirakis weighted reservoir over the live neighbour
        # columns (zero-copy views of the adjacency store).
        for dst, bias in zip(
            graph.neighbor_array(vertex).tolist(), graph.bias_array(vertex).tolist()
        ):
            u = self._rng.random()
            key = math.log(u) / bias if u > 0.0 else -math.inf
            if key > best_key:
                best_key = key
                best_dst = dst
        return best_dst

    def _sample_batch(
        self, vertex: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        graph = self._require_graph()
        if not (0 <= vertex < graph.num_vertices):
            return np.full(count, -1, dtype=np.int64)
        degree = graph.degree(vertex)
        if degree == 0:
            return np.full(count, -1, dtype=np.int64)
        dsts = graph.neighbor_array(vertex)
        biases = graph.bias_array(vertex)
        # Efraimidis–Spirakis keys for every (walker, neighbour) pair at once;
        # the per-row argmax is the reservoir winner, still structure-free and
        # still O(d) work per query like the scalar pass.
        uniforms = rng.random((count, degree))
        with np.errstate(divide="ignore"):
            keys = np.log(uniforms) / biases
        return dsts[np.argmax(keys, axis=1)]

    # ------------------------------------------------------------------ #
    def memory_report(self) -> MemoryReport:
        report = MemoryReport()
        graph = self._require_graph()
        report.add("graph", graph.num_arcs * (4 + 8) + graph.num_vertices * 8)
        # Per-walker reservoir registers only; modelled as one slot per vertex.
        report.add("reservoir_state", graph.num_vertices * 8)
        return report
