"""The Bingo engine: per-vertex radix-factorized samplers on a dynamic graph.

This is the system the paper contributes.  Each vertex with out-edges owns a
:class:`~repro.core.vertex_sampler.BingoVertexSampler`; streaming updates touch
one sampler in O(K); batched updates follow the Section 5.2 workflow — group
requests by vertex, collapse them to net insertions/deletions, apply them with
the sampler's rebuild deferred, then rebuild each touched vertex exactly once.
Kernel launches are accounted on an optional
:class:`~repro.gpu.device.SimulatedDevice` so throughput experiments can report
device-model parallel steps alongside wall-clock time.
"""

from __future__ import annotations

import time
from functools import partial
from collections.abc import Sequence

import numpy as np

from repro.core.adaptive import ConversionTracker, GroupClassifier
from repro.core.memory_model import MemoryReport
from repro.core.radix import choose_amortization_factor, split_scaled_biases
from repro.core.vertex_sampler import (
    DECIMAL_GROUP_KEY,
    BingoVertexSampler,
    rebuild_samplers_batch,
)
from repro.engines.base import (
    PHASE_DELETE,
    PHASE_INSERT,
    PHASE_REBUILD,
    RandomWalkEngine,
)
from repro.engines.sliced_tables import (
    FrontierDelta,
    SlicedTableStore,
    adopt_store_state,
    export_store_state,
    mark_frontier_dirty,
    warm_frontier_delta,
)
from repro.errors import UpdateError
from repro.gpu.device import SimulatedDevice
from repro.gpu.kernels import (
    BatchStatistics,
    group_updates_by_vertex,
    normalize_vertex_updates,
)
from repro.graph.update_batch import UpdateBatch
from repro.graph.update_stream import GraphUpdate
from repro.utils.rng import RandomSource, spawn_rng


class BingoEngine(RandomWalkEngine):
    """GPU-style random walk engine built on radix-based bias factorization.

    Parameters
    ----------
    lam:
        Amortization factor for floating-point biases.  ``None`` (default)
        selects λ automatically from the biases present when :meth:`build`
        runs (Section 4.3's empirical choice); integer-bias graphs resolve to
        λ = 1.
    adaptive_groups:
        Enables the Section 5.1 group-adaption optimisation.  ``False``
        reproduces the BS baseline of Figures 11 and 13.
    alpha_percent / beta_percent:
        The Equation (9) thresholds (paper defaults 40 / 10).
    device:
        Optional simulated device used to account batched-update kernels.
    """

    name = "bingo"
    supports_batch = True

    def __init__(
        self,
        *,
        rng: RandomSource = None,
        lam: float | None = None,
        adaptive_groups: bool = True,
        alpha_percent: float = 40.0,
        beta_percent: float = 10.0,
        device: SimulatedDevice | None = None,
    ) -> None:
        super().__init__(rng=rng)
        self._requested_lam = lam
        self.lam = lam if lam is not None else 1.0
        self.classifier = GroupClassifier(
            alpha_percent=alpha_percent,
            beta_percent=beta_percent,
            adaptive=adaptive_groups,
        )
        self.conversion_tracker = ConversionTracker()
        self.device = device if device is not None else SimulatedDevice()
        self.batch_stats = BatchStatistics()
        self._samplers: dict[int, BingoVertexSampler] = {}
        # Concatenated per-vertex sampling tables for the fused frontier
        # kernel, kept as sliced segments in two coupled stores: the
        # inter-group alias slices and the flat member table they point
        # into.  An update batch marks its touched vertices dirty and the
        # next table build repairs exactly those slices; the per-vertex
        # parts (with local offsets) are cached in ``_vertex_tables``.
        self._frontier_cache: dict[str, np.ndarray] | None = None
        self._vertex_tables: dict[int, tuple] = {}
        self._frontier_dirty: set[int] = set()
        self._inter_store = SlicedTableStore(
            {
                "prob": np.float64,
                "alias": np.int64,
                "entry_offset": np.int64,
                "entry_size": np.int64,
                "entry_decimal": np.bool_,
            }
        )
        self._flat_store = SlicedTableStore({"flat": np.int64})
        #: Cold/compaction full concatenations performed (delta accounting).
        self.frontier_full_builds = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build_state(self) -> None:
        graph = self._require_graph()
        if self._requested_lam is None:
            # Shard views expose the whole bias column flat; use it instead
            # of iterating edges so every worker derives λ cheaply (and
            # identically — same multiset of biases as the full graph).
            column = getattr(graph, "biases", None)
            if isinstance(column, np.ndarray):
                biases = column.tolist()
            else:
                biases = [edge.bias for edge in graph.edges()]
            self.lam = choose_amortization_factor(biases) if biases else 1.0
        self._samplers = {}
        self._frontier_cache = None
        self._vertex_tables = {}
        self._frontier_dirty.clear()
        for vertex in self._build_vertex_ids():
            if graph.degree(vertex) == 0:
                continue
            sampler = self._new_sampler(vertex)
            sampler.insert_many(
                graph.neighbor_array(vertex), graph.bias_array(vertex)
            )
            self._samplers[vertex] = sampler
        rebuild_samplers_batch(list(self._samplers.values()))

    def _new_sampler(self, vertex: int) -> BingoVertexSampler:
        return BingoVertexSampler(
            rng=spawn_rng(self._rng, vertex),
            lam=self.lam,
            classifier=self.classifier,
            conversion_tracker=self.conversion_tracker,
            auto_rebuild=False,
        )

    def sampler_for(self, vertex: int) -> BingoVertexSampler | None:
        """The per-vertex sampler (None for vertices without out-edges)."""
        return self._samplers.get(vertex)

    def _decimal_sampler(self, vertex: int) -> BingoVertexSampler:
        """The vertex's sampler, rebuilt from the graph when missing.

        Shard replicas adopt their fused tables over the wire and only
        keep samplers for owned vertices (patches evict touched ones), so
        a decimal-group hit on an unowned or patched vertex rebuilds the
        sampler lazily from the local (kept-fresh) adjacency.
        """
        sampler = self._samplers.get(vertex)
        if sampler is None:
            graph = self._require_graph()
            sampler = self._new_sampler(vertex)
            sampler.insert_many(
                graph.neighbor_array(vertex), graph.bias_array(vertex)
            )
            sampler.rebuild()
            self._samplers[vertex] = sampler
        return sampler

    # ------------------------------------------------------------------ #
    # streaming updates: O(K) per event plus one inter-group rebuild
    # ------------------------------------------------------------------ #
    def _on_insert(self, src: int, dst: int, bias: float) -> None:
        mark_frontier_dirty(self, (src,))
        self._vertex_tables.pop(src, None)
        sampler = self._samplers.get(src)
        if sampler is None:
            sampler = self._new_sampler(src)
            self._samplers[src] = sampler
        sampler.insert(dst, bias)
        start = time.perf_counter()
        sampler.rebuild()
        self.breakdown.add(PHASE_REBUILD, time.perf_counter() - start)

    def _on_delete(self, src: int, dst: int) -> None:
        mark_frontier_dirty(self, (src,))
        self._vertex_tables.pop(src, None)
        sampler = self._samplers.get(src)
        if sampler is None or not sampler.contains(dst):
            raise UpdateError(f"Bingo has no sampling state for edge ({src}, {dst})")
        sampler.delete(dst)
        start = time.perf_counter()
        if len(sampler) == 0:
            del self._samplers[src]
        else:
            sampler.rebuild()
        self.breakdown.add(PHASE_REBUILD, time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    # batched updates (Section 5.2, columnar pipeline)
    # ------------------------------------------------------------------ #
    def apply_batch(self, updates: Sequence[GraphUpdate]) -> None:
        """Ingest a batch through the columnar pipeline.

        The Section 5.2 workflow on :class:`~repro.graph.update_batch.UpdateBatch`
        columns: one argsort groups the requests by vertex, each vertex's
        slice is collapsed to net insertions/deletions (vectorized
        cancellation), the graph mutates through the bulk columnar mutators,
        samplers absorb whole slices via ``insert_many`` / ``delete_many``,
        and every touched vertex's inter-group table is rebuilt in one
        batched Vose pass.  The post-batch engine state is identical to the
        per-edge reference path (:meth:`apply_batch_scalar`) — including
        seeded sampling draws.

        Phase timings are aggregated once per batch (one timer pair per
        phase) instead of per touched vertex, so the fig13 breakdown no
        longer pays measurement overhead proportional to batch spread.
        """
        graph = self._require_graph()
        batch = UpdateBatch.coerce(updates)
        stats = BatchStatistics()
        groups = batch.group_by_source()
        mark_frontier_dirty(self, (group.vertex for group in groups))
        stats.touched_vertices = len(groups)
        highest = batch.max_vertex()
        if highest >= 0:
            graph.ensure_vertices(highest)
        wall_start = time.perf_counter()

        # Request reordering + net-effect normalization (host-side prepass).
        plans = []
        for group in groups:
            vertex = group.vertex
            self._vertex_tables.pop(vertex, None)
            deletions, insert_dsts, insert_biases, cancelled = group.normalize(
                partial(graph.has_edges, vertex)
            )
            stats.cancelled_pairs += cancelled
            plans.append((vertex, deletions, insert_dsts, insert_biases))

        delete_start = time.perf_counter()
        samplers = self._samplers
        for vertex, deletions, _, _ in plans:
            if len(deletions) == 0:
                continue
            graph.remove_edges_bulk(vertex, deletions)
            sampler = samplers.get(vertex)
            if sampler is not None:
                index_of = sampler._index_of
                sampler.delete_many(
                    [dst for dst in deletions.tolist() if dst in index_of]
                )
            stats.deletions += len(deletions)
        insert_start = time.perf_counter()
        self.breakdown.add(PHASE_DELETE, insert_start - delete_start)

        # One vectorized bias split for every net insertion in the batch;
        # each vertex's sampler then absorbs its pre-split slice without
        # touching NumPy again.
        bias_parts = [plan[3] for plan in plans if len(plan[3])]
        integer_list: list[int] = []
        fraction_list: list[float] = []
        if bias_parts:
            merged = (
                np.concatenate(bias_parts) if len(bias_parts) > 1 else bias_parts[0]
            )
            integer_list, fraction_list = split_scaled_biases(merged, self.lam)

        cursor = 0
        for vertex, _, insert_dsts, insert_biases in plans:
            count = len(insert_dsts)
            if count == 0:
                continue
            graph.add_edges_bulk(vertex, insert_dsts, insert_biases)
            sampler = samplers.get(vertex)
            if sampler is None:
                sampler = self._new_sampler(vertex)
                samplers[vertex] = sampler
            sampler.insert_many(
                insert_dsts,
                insert_biases,
                split_parts=(
                    integer_list[cursor : cursor + count],
                    fraction_list[cursor : cursor + count],
                ),
            )
            cursor += count
            stats.insertions += count
        rebuild_start = time.perf_counter()
        self.breakdown.add(PHASE_INSERT, rebuild_start - insert_start)

        to_rebuild = []
        for vertex, _, _, _ in plans:
            sampler = self._samplers.get(vertex)
            if sampler is None:
                continue
            if len(sampler) == 0:
                self._samplers.pop(vertex, None)
            else:
                to_rebuild.append(sampler)
            stats.rebuilds += 1
        rebuild_samplers_batch(to_rebuild)
        done = time.perf_counter()
        self.breakdown.add(PHASE_REBUILD, done - rebuild_start)

        launch = self.device.record(
            "batched_update", len(groups), wall_seconds=done - wall_start
        )
        stats.kernel_launches += 1
        stats.parallel_steps += launch.parallel_steps
        self.batch_stats.merge(stats)
        self.updates_applied += len(batch)

    def apply_batch_scalar(self, updates: Sequence[GraphUpdate]) -> None:
        """The legacy per-edge batch path (reference for equivalence/benchmarks).

        Same Section 5.2 semantics as :meth:`apply_batch`, executed one edge
        at a time through the scalar graph and sampler mutators with one
        scalar rebuild per touched vertex — the pre-columnar implementation,
        kept as the ground truth the columnar pipeline is measured against.
        """
        graph = self._require_graph()
        stats = BatchStatistics()
        grouped = group_updates_by_vertex(updates)
        mark_frontier_dirty(self, grouped)
        stats.touched_vertices = len(grouped)

        def process_vertex(item) -> None:
            vertex, vertex_updates = item
            self._vertex_tables.pop(vertex, None)
            graph.ensure_vertex(vertex)
            for update in vertex_updates:
                graph.ensure_vertex(update.dst)
            # Only the destinations mentioned in this batch matter for the
            # delete-then-reinsert case; checking them individually keeps the
            # normalisation O(#updates) instead of O(degree).
            existing = {
                update.dst
                for update in vertex_updates
                if graph.has_edge(vertex, update.dst)
            }
            insertions, deletions, cancelled = normalize_vertex_updates(
                vertex_updates, existing
            )
            stats.cancelled_pairs += cancelled

            sampler = self._samplers.get(vertex)
            delete_start = time.perf_counter()
            for dst in deletions:
                graph.remove_edge(vertex, dst)
                if sampler is not None and sampler.contains(dst):
                    sampler.delete(dst)
                stats.deletions += 1
            self.breakdown.add(PHASE_DELETE, time.perf_counter() - delete_start)

            insert_start = time.perf_counter()
            for dst, bias in insertions:
                graph.add_edge(vertex, dst, bias)
                if sampler is None:
                    sampler = self._new_sampler(vertex)
                    self._samplers[vertex] = sampler
                sampler.insert(dst, bias)
                stats.insertions += 1
            self.breakdown.add(PHASE_INSERT, time.perf_counter() - insert_start)

            rebuild_start = time.perf_counter()
            if sampler is not None:
                if len(sampler) == 0:
                    self._samplers.pop(vertex, None)
                else:
                    sampler.rebuild()
                stats.rebuilds += 1
            self.breakdown.add(PHASE_REBUILD, time.perf_counter() - rebuild_start)

        self.device.launch("batched_update", list(grouped.items()), process_vertex)
        stats.kernel_launches += 1
        stats.parallel_steps += self.device.launches[-1].parallel_steps
        self.batch_stats.merge(stats)
        self.updates_applied += len(updates)

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def _sample(self, vertex: int) -> int | None:
        self._require_graph()
        sampler = self._samplers.get(vertex)
        if sampler is None or len(sampler) == 0:
            return None
        return sampler.sample()

    def _sample_batch(
        self, vertex: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        self._require_graph()
        sampler = self._samplers.get(vertex)
        if sampler is None or len(sampler) == 0:
            return np.full(count, -1, dtype=np.int64)
        return sampler.sample_many(count, rng)

    # ------------------------------------------------------------------ #
    # fused frontier kernel
    # ------------------------------------------------------------------ #
    def _vertex_parts(self, vertex: int, sampler: BingoVertexSampler) -> tuple:
        parts = self._vertex_tables.get(vertex)
        if parts is None:
            parts = self._build_vertex_table(sampler)
            self._vertex_tables[vertex] = parts
        return parts

    def _set_vertex_slices(self, vertex: int, parts: tuple) -> None:
        """Write one vertex's segments into both stores (flat first).

        The inter store's ``entry_offset`` entries are *global* positions
        in the flat member table, so the flat segment must land before its
        offset is known.
        """
        prob, alias, entry_offset, entry_size, entry_decimal, flat = parts
        flat_offset = self._flat_store.set_slice(vertex, {"flat": flat})
        self._inter_store.set_slice(
            vertex,
            {
                "prob": prob,
                "alias": alias,
                "entry_offset": flat_offset + entry_offset,
                "entry_size": entry_size,
                "entry_decimal": entry_decimal,
            },
        )

    def _rebuild_frontier_stores(self) -> None:
        """Cold full concatenation of both stores from the parts cache.

        Also the compaction fallback: flat-store compaction moves segments
        the inter store's global ``entry_offset`` values point into, so
        instead of rewriting offsets piecemeal both stores are re-packed
        from the (hot) per-vertex parts cache in one pass.  Stale parts of
        vertices whose samplers dropped to zero edges are evicted here.
        """
        graph = self._require_graph()
        self.frontier_full_builds += 1
        self._frontier_dirty.clear()
        self._inter_store.reset(graph.num_vertices)
        self._flat_store.reset(graph.num_vertices)
        live: set[int] = set()
        for vertex, sampler in self._samplers.items():
            if len(sampler) == 0:
                continue
            live.add(vertex)
            self._set_vertex_slices(vertex, self._vertex_parts(vertex, sampler))
        for vertex in [v for v in self._vertex_tables if v not in live]:
            del self._vertex_tables[vertex]

    def _frontier_tables(self) -> dict[str, np.ndarray]:
        """Per-vertex sampling tables concatenated into global arrays.

        One flattened structure serves the whole graph: per-vertex slices of
        the inter-group alias arrays (``group_offset`` / ``group_count``)
        select a group with a fused bucket-and-toss, and per-inter-entry
        slices of a global member table (``entry_offset`` / ``entry_size``)
        resolve the intra-group uniform pick — so a frontier of N walkers on
        arbitrary vertices advances with a fixed number of NumPy operations.
        Entries landing in a decimal group are flagged and re-resolved by
        the per-vertex rejection kernel (they are rare by the choice of λ).
        Built cold once; afterwards an update batch marks its touched
        vertices in ``_frontier_dirty`` and this repairs exactly those
        slices in the sliced stores, so a flip costs O(touched), not O(V)
        (compaction of either store falls back to the full re-pack).
        """
        if self._frontier_cache is not None and not self._frontier_dirty:
            return self._frontier_cache
        graph = self._require_graph()
        if self._frontier_cache is None:
            self._rebuild_frontier_stores()
        else:
            self._inter_store.ensure_vertices(graph.num_vertices)
            self._flat_store.ensure_vertices(graph.num_vertices)
            for vertex in sorted(self._frontier_dirty):
                sampler = self._samplers.get(vertex)
                if sampler is None or len(sampler) == 0:
                    # Evict, don't skip: a vertex churned down to zero edges
                    # must release both its slices and its parts cache.
                    self._vertex_tables.pop(vertex, None)
                    self._inter_store.clear_slice(vertex)
                    self._flat_store.clear_slice(vertex)
                    continue
                self._set_vertex_slices(vertex, self._vertex_parts(vertex, sampler))
            self._frontier_dirty.clear()
            if self._inter_store.needs_compaction() or self._flat_store.needs_compaction():
                self._rebuild_frontier_stores()
        # Re-derive the view dict every repair: capacity growth and
        # compaction replace the backing arrays.
        self._refresh_frontier_views()
        return self._frontier_cache

    def _refresh_frontier_views(self) -> None:
        self._frontier_cache = {
            "group_offset": self._inter_store.seg_offset,
            "group_count": self._inter_store.seg_length,
            "prob": self._inter_store.column("prob"),
            "alias": self._inter_store.column("alias"),
            "entry_offset": self._inter_store.column("entry_offset"),
            "entry_size": self._inter_store.column("entry_size"),
            "entry_decimal": self._inter_store.column("entry_decimal"),
            "flat": self._flat_store.column("flat"),
        }

    def warm_frontier_tables(self) -> FrontierDelta:
        """Repair the fused tables now; reports the slices it re-derived."""
        return warm_frontier_delta(self)

    # ------------------------------------------------------------------ #
    # cross-process frontier state (the shard-router transport)
    # ------------------------------------------------------------------ #
    def export_frontier_state(self) -> dict[str, np.ndarray]:
        """Both stores' full state as plain arrays (the shard boot payload).

        The inter store's global ``entry_offset`` values stay valid
        verbatim because the flat heap ships whole — offsets reference
        the same positions on the adopting side.
        """
        self._frontier_tables()
        state = {
            "num_vertices": np.array(
                [self._require_graph().num_vertices], dtype=np.int64
            )
        }
        state.update(export_store_state(self._inter_store, "inter_"))
        state.update(export_store_state(self._flat_store, "flat_"))
        return state

    def adopt_frontier_state(self, state: dict[str, np.ndarray]) -> None:
        """Replace the fused tables with a writer's exported snapshot.

        A shard replica keeps its own (owned-only) samplers but walks the
        *global* adopted tables; subsequent flips arrive as
        :meth:`apply_frontier_patch` slices instead of fresh snapshots.
        """
        adopt_store_state(self._inter_store, state, "inter_")
        adopt_store_state(self._flat_store, state, "flat_")
        self._frontier_dirty.clear()
        self._refresh_frontier_views()

    def export_frontier_patch(self, vertices) -> dict[str, np.ndarray]:
        """The touched vertices' slices of both stores, offsets made local.

        ``entry_offset`` entries are global positions in *this* engine's
        flat heap; the replica's heap packs the same slices at different
        positions, so the patch carries offsets relative to each vertex's
        own flat segment and :meth:`apply_frontier_patch` re-bases them —
        the exact discipline of :meth:`_set_vertex_slices`.
        """
        self._frontier_tables()
        inter, flat = self._inter_store, self._flat_store
        ids = np.asarray(sorted(int(v) for v in vertices), dtype=np.int64)
        inter_lengths = np.zeros(len(ids), dtype=np.int64)
        flat_lengths = np.zeros(len(ids), dtype=np.int64)
        in_directory = ids < inter.num_vertices
        inter_lengths[in_directory] = inter.seg_length[ids[in_directory]]
        flat_lengths[in_directory] = flat.seg_length[ids[in_directory]]
        payload: dict[str, np.ndarray] = {
            "vertices": ids,
            "inter_lengths": inter_lengths,
            "flat_lengths": flat_lengths,
            "num_vertices": np.array(
                [self._require_graph().num_vertices], dtype=np.int64
            ),
        }
        for name in ("prob", "alias", "entry_offset", "entry_size", "entry_decimal"):
            column = inter.column(name)
            pieces = [
                column[inter.seg_offset[v] : inter.seg_offset[v] + length]
                for v, length in zip(ids, inter_lengths)
                if length > 0
            ]
            payload[name] = (
                np.concatenate(pieces)
                if pieces
                else np.empty(0, dtype=column.dtype)
            )
        flat_column = flat.column("flat")
        flat_pieces = [
            flat_column[flat.seg_offset[v] : flat.seg_offset[v] + length]
            for v, length in zip(ids, flat_lengths)
            if length > 0
        ]
        payload["flat"] = (
            np.concatenate(flat_pieces)
            if flat_pieces
            else np.empty(0, dtype=np.int64)
        )
        # Globals -> locals: subtract each vertex's flat segment base.
        bases = np.zeros(len(ids), dtype=np.int64)
        bases[in_directory] = flat.seg_offset[ids[in_directory]]
        payload["entry_offset"] = payload["entry_offset"] - np.repeat(
            bases, inter_lengths
        )
        return payload

    def apply_frontier_patch(self, payload: dict[str, np.ndarray]) -> None:
        """Apply a writer's :meth:`export_frontier_patch` to this replica.

        Mirrors :meth:`_set_vertex_slices`: each vertex's flat slice lands
        first and its fresh offset re-bases the local ``entry_offset``
        entries.  Touched vertices' scalar samplers are evicted (stale);
        the decimal fallback rebuilds them lazily from the (kept-fresh)
        local graph.
        """
        inter, flat = self._inter_store, self._flat_store
        num_vertices = int(payload["num_vertices"][0])
        inter.ensure_vertices(num_vertices)
        flat.ensure_vertices(num_vertices)
        inter_cursor = 0
        flat_cursor = 0
        for position, v in enumerate(payload["vertices"]):
            vertex = int(v)
            inter_length = int(payload["inter_lengths"][position])
            flat_length = int(payload["flat_lengths"][position])
            self._samplers.pop(vertex, None)
            self._vertex_tables.pop(vertex, None)
            if vertex >= inter.num_vertices:
                inter.ensure_vertices(vertex + 1)
                flat.ensure_vertices(vertex + 1)
            if inter_length == 0:
                inter.clear_slice(vertex)
                flat.clear_slice(vertex)
                continue
            flat_offset = flat.set_slice(
                vertex,
                {"flat": payload["flat"][flat_cursor : flat_cursor + flat_length]},
            )
            inter.set_slice(
                vertex,
                {
                    "prob": payload["prob"][inter_cursor : inter_cursor + inter_length],
                    "alias": payload["alias"][inter_cursor : inter_cursor + inter_length],
                    "entry_offset": payload["entry_offset"][
                        inter_cursor : inter_cursor + inter_length
                    ]
                    + flat_offset,
                    "entry_size": payload["entry_size"][
                        inter_cursor : inter_cursor + inter_length
                    ],
                    "entry_decimal": payload["entry_decimal"][
                        inter_cursor : inter_cursor + inter_length
                    ],
                },
            )
            inter_cursor += inter_length
            flat_cursor += flat_length
        if inter.needs_compaction() or flat.needs_compaction():
            self._compact_replica_stores()
        self._frontier_dirty.clear()
        self._refresh_frontier_views()

    def _compact_replica_stores(self) -> None:
        """Compact both stores without the writer's per-vertex parts cache.

        The writer-side compaction fallback re-packs from
        ``_vertex_tables``; a replica adopted its tables over the wire and
        has no such cache, so it compacts the heaps directly and re-bases
        the global ``entry_offset`` entries by each vertex's flat-segment
        displacement.
        """
        flat = self._flat_store
        inter = self._inter_store
        old_flat_offset = flat.seg_offset.copy()
        flat.compact()
        shift = flat.seg_offset - old_flat_offset
        entry_offset = inter.column("entry_offset")
        for vertex in np.nonzero(inter.seg_length > 0)[0]:
            if shift[vertex] == 0:
                continue
            start = inter.seg_offset[vertex]
            entry_offset[start : start + inter.seg_length[vertex]] += shift[vertex]
        inter.compact()

    @staticmethod
    def _build_vertex_table(sampler: BingoVertexSampler) -> tuple:
        """One vertex's slice of the fused tables (offsets still local)."""
        if sampler._inter_dirty:
            sampler.rebuild()
        ids, lut, flat, offsets, sizes = sampler._batch_cache()
        group_ids, prob, alias = sampler._inter_group.numpy_tables()
        slots = lut[group_ids + 1]
        # Translate neighbour indices to neighbour ids once, here, so the
        # query path gathers final vertex ids directly.
        return (
            prob,
            alias,
            offsets[slots],
            sizes[slots],
            group_ids == DECIMAL_GROUP_KEY,
            ids[flat],
        )

    def _sample_frontier(
        self, vertices: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        tables = self._frontier_tables()
        count = len(vertices)
        out = np.full(count, -1, dtype=np.int64)
        limit = len(tables["group_count"])
        if limit == 0:
            return out
        # Out-of-range vertices — negative ids (retired-walker padding) or ids
        # past the table range — draw -1, matching the scalar path; clipping
        # keeps the gather in bounds instead of wrapping onto another vertex.
        in_range = (vertices >= 0) & (vertices < limit)
        safe = np.clip(vertices, 0, limit - 1)
        counts = np.where(in_range, tables["group_count"][safe], 0)
        live = np.nonzero(counts > 0)[0]
        if len(live) == 0:
            return out
        query = vertices[live]
        offsets = tables["group_offset"][query]
        sizes = counts[live]

        uniforms = rng.random(3 * len(live))
        first = uniforms[: len(live)]
        second = uniforms[len(live) : 2 * len(live)]
        third = uniforms[2 * len(live) :]

        # Stage 1 — vectorized group selection (per-vertex alias slices).
        buckets = offsets + (first * sizes).astype(np.int64)
        chosen = np.where(
            second < tables["prob"][buckets],
            buckets,
            offsets + tables["alias"][buckets],
        )
        # Stage 2 — vectorized intra-group uniform pick via the member table.
        entry_sizes = tables["entry_size"][chosen]
        positions = tables["entry_offset"][chosen] + np.minimum(
            (third * entry_sizes).astype(np.int64), entry_sizes - 1
        )
        drawn = tables["flat"][positions]

        decimal_mask = tables["entry_decimal"][chosen]
        if decimal_mask.any():
            picks = np.nonzero(decimal_mask)[0]
            for vertex in np.unique(query[picks]):
                members = picks[query[picks] == vertex]
                sampler = self._decimal_sampler(int(vertex))
                ids = sampler._batch_cache()[0]
                indices = sampler._decimal.sample_batch(
                    len(members), rng, counter=sampler.counter
                )
                drawn[members] = ids[indices]
        out[live] = drawn
        return out

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def memory_report(self) -> MemoryReport:
        report = MemoryReport()
        graph = self._require_graph()
        # The adjacency itself (shared by every engine).
        report.add("graph", graph.num_arcs * (4 + 8) + graph.num_vertices * 8)
        for sampler in self._samplers.values():
            report.merge(sampler.memory_report())
        return report

    def group_kind_ratios(self) -> dict[str, float]:
        """Share of non-empty groups per representation (Figure 11e)."""
        counts: dict[str, int] = {}
        total = 0
        for sampler in self._samplers.values():
            for kind in sampler.group_kinds().values():
                counts[kind.value] = counts.get(kind.value, 0) + 1
                total += 1
        if total == 0:
            return {}
        return {kind: count / total for kind, count in counts.items()}

    def check_consistency(self) -> None:
        """Verify every sampler matches the graph adjacency (test hook)."""
        graph = self._require_graph()
        for vertex in range(graph.num_vertices):
            sampler = self._samplers.get(vertex)
            expected = {dst: graph.edge_bias(vertex, dst) for dst in graph.neighbors(vertex)}
            if not expected:
                if sampler is not None and len(sampler) > 0:
                    raise UpdateError(f"vertex {vertex} has stale sampling state")
                continue
            if sampler is None:
                raise UpdateError(f"vertex {vertex} is missing sampling state")
            actual = dict(sampler.candidates())
            if set(actual) != set(expected):
                raise UpdateError(f"vertex {vertex} sampler/graph neighbour mismatch")
            for dst, bias in expected.items():
                if abs(actual[dst] - bias) > 1e-9:
                    raise UpdateError(f"vertex {vertex} bias mismatch on edge to {dst}")
            sampler.check_invariants()
