"""The Bingo engine: per-vertex radix-factorized samplers on a dynamic graph.

This is the system the paper contributes.  Each vertex with out-edges owns a
:class:`~repro.core.vertex_sampler.BingoVertexSampler`; streaming updates touch
one sampler in O(K); batched updates follow the Section 5.2 workflow — group
requests by vertex, collapse them to net insertions/deletions, apply them with
the sampler's rebuild deferred, then rebuild each touched vertex exactly once.
Kernel launches are accounted on an optional
:class:`~repro.gpu.device.SimulatedDevice` so throughput experiments can report
device-model parallel steps alongside wall-clock time.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.adaptive import ConversionTracker, GroupClassifier
from repro.core.memory_model import MemoryReport
from repro.core.radix import choose_amortization_factor
from repro.core.vertex_sampler import BingoVertexSampler
from repro.engines.base import (
    PHASE_DELETE,
    PHASE_INSERT,
    PHASE_REBUILD,
    RandomWalkEngine,
)
from repro.errors import UpdateError
from repro.gpu.device import SimulatedDevice
from repro.gpu.kernels import (
    BatchStatistics,
    group_updates_by_vertex,
    normalize_vertex_updates,
)
from repro.graph.update_stream import GraphUpdate, UpdateKind
from repro.utils.rng import RandomSource, spawn_rng


class BingoEngine(RandomWalkEngine):
    """GPU-style random walk engine built on radix-based bias factorization.

    Parameters
    ----------
    lam:
        Amortization factor for floating-point biases.  ``None`` (default)
        selects λ automatically from the biases present when :meth:`build`
        runs (Section 4.3's empirical choice); integer-bias graphs resolve to
        λ = 1.
    adaptive_groups:
        Enables the Section 5.1 group-adaption optimisation.  ``False``
        reproduces the BS baseline of Figures 11 and 13.
    alpha_percent / beta_percent:
        The Equation (9) thresholds (paper defaults 40 / 10).
    device:
        Optional simulated device used to account batched-update kernels.
    """

    name = "bingo"

    def __init__(
        self,
        *,
        rng: RandomSource = None,
        lam: Optional[float] = None,
        adaptive_groups: bool = True,
        alpha_percent: float = 40.0,
        beta_percent: float = 10.0,
        device: Optional[SimulatedDevice] = None,
    ) -> None:
        super().__init__(rng=rng)
        self._requested_lam = lam
        self.lam = lam if lam is not None else 1.0
        self.classifier = GroupClassifier(
            alpha_percent=alpha_percent,
            beta_percent=beta_percent,
            adaptive=adaptive_groups,
        )
        self.conversion_tracker = ConversionTracker()
        self.device = device if device is not None else SimulatedDevice()
        self.batch_stats = BatchStatistics()
        self._samplers: Dict[int, BingoVertexSampler] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build_state(self) -> None:
        graph = self._require_graph()
        if self._requested_lam is None:
            biases = [edge.bias for edge in graph.edges()]
            self.lam = choose_amortization_factor(biases) if biases else 1.0
        self._samplers = {}
        for vertex in range(graph.num_vertices):
            if graph.degree(vertex) == 0:
                continue
            sampler = self._new_sampler(vertex)
            for edge in graph.out_edges(vertex):
                sampler.insert(edge.dst, edge.bias)
            sampler.rebuild()
            self._samplers[vertex] = sampler

    def _new_sampler(self, vertex: int) -> BingoVertexSampler:
        return BingoVertexSampler(
            rng=spawn_rng(self._rng, vertex),
            lam=self.lam,
            classifier=self.classifier,
            conversion_tracker=self.conversion_tracker,
            auto_rebuild=False,
        )

    def sampler_for(self, vertex: int) -> Optional[BingoVertexSampler]:
        """The per-vertex sampler (None for vertices without out-edges)."""
        return self._samplers.get(vertex)

    # ------------------------------------------------------------------ #
    # streaming updates: O(K) per event plus one inter-group rebuild
    # ------------------------------------------------------------------ #
    def _on_insert(self, src: int, dst: int, bias: float) -> None:
        sampler = self._samplers.get(src)
        if sampler is None:
            sampler = self._new_sampler(src)
            self._samplers[src] = sampler
        sampler.insert(dst, bias)
        start = time.perf_counter()
        sampler.rebuild()
        self.breakdown.add(PHASE_REBUILD, time.perf_counter() - start)

    def _on_delete(self, src: int, dst: int) -> None:
        sampler = self._samplers.get(src)
        if sampler is None or not sampler.contains(dst):
            raise UpdateError(f"Bingo has no sampling state for edge ({src}, {dst})")
        sampler.delete(dst)
        start = time.perf_counter()
        if len(sampler) == 0:
            del self._samplers[src]
        else:
            sampler.rebuild()
        self.breakdown.add(PHASE_REBUILD, time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    # batched updates (Section 5.2)
    # ------------------------------------------------------------------ #
    def apply_batch(self, updates: Sequence[GraphUpdate]) -> None:
        """Ingest a batch: reorder by vertex, apply net updates, rebuild once."""
        graph = self._require_graph()
        stats = BatchStatistics()
        grouped = group_updates_by_vertex(updates)
        stats.touched_vertices = len(grouped)

        def process_vertex(item) -> None:
            vertex, vertex_updates = item
            graph.ensure_vertex(vertex)
            for update in vertex_updates:
                graph.ensure_vertex(update.dst)
            # Only the destinations mentioned in this batch matter for the
            # delete-then-reinsert case; checking them individually keeps the
            # normalisation O(#updates) instead of O(degree).
            existing = {
                update.dst
                for update in vertex_updates
                if graph.has_edge(vertex, update.dst)
            }
            insertions, deletions, cancelled = normalize_vertex_updates(
                vertex_updates, existing
            )
            stats.cancelled_pairs += cancelled

            sampler = self._samplers.get(vertex)
            delete_start = time.perf_counter()
            for dst in deletions:
                graph.remove_edge(vertex, dst)
                if sampler is not None and sampler.contains(dst):
                    sampler.delete(dst)
                stats.deletions += 1
            self.breakdown.add(PHASE_DELETE, time.perf_counter() - delete_start)

            insert_start = time.perf_counter()
            for dst, bias in insertions:
                graph.add_edge(vertex, dst, bias)
                if sampler is None:
                    sampler = self._new_sampler(vertex)
                    self._samplers[vertex] = sampler
                sampler.insert(dst, bias)
                stats.insertions += 1
            self.breakdown.add(PHASE_INSERT, time.perf_counter() - insert_start)

            rebuild_start = time.perf_counter()
            if sampler is not None:
                if len(sampler) == 0:
                    self._samplers.pop(vertex, None)
                else:
                    sampler.rebuild()
                stats.rebuilds += 1
            self.breakdown.add(PHASE_REBUILD, time.perf_counter() - rebuild_start)

        self.device.launch("batched_update", list(grouped.items()), process_vertex)
        stats.kernel_launches += 1
        stats.parallel_steps += self.device.launches[-1].parallel_steps
        self.batch_stats.merge(stats)
        self.updates_applied += len(updates)

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def _sample(self, vertex: int) -> Optional[int]:
        self._require_graph()
        sampler = self._samplers.get(vertex)
        if sampler is None or len(sampler) == 0:
            return None
        return sampler.sample()

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def memory_report(self) -> MemoryReport:
        report = MemoryReport()
        graph = self._require_graph()
        # The adjacency itself (shared by every engine).
        report.add("graph", graph.num_arcs * (4 + 8) + graph.num_vertices * 8)
        for sampler in self._samplers.values():
            report.merge(sampler.memory_report())
        return report

    def group_kind_ratios(self) -> Dict[str, float]:
        """Share of non-empty groups per representation (Figure 11e)."""
        counts: Dict[str, int] = {}
        total = 0
        for sampler in self._samplers.values():
            for kind in sampler.group_kinds().values():
                counts[kind.value] = counts.get(kind.value, 0) + 1
                total += 1
        if total == 0:
            return {}
        return {kind: count / total for kind, count in counts.items()}

    def check_consistency(self) -> None:
        """Verify every sampler matches the graph adjacency (test hook)."""
        graph = self._require_graph()
        for vertex in range(graph.num_vertices):
            sampler = self._samplers.get(vertex)
            expected = {dst: graph.edge_bias(vertex, dst) for dst in graph.neighbors(vertex)}
            if not expected:
                if sampler is not None and len(sampler) > 0:
                    raise UpdateError(f"vertex {vertex} has stale sampling state")
                continue
            if sampler is None:
                raise UpdateError(f"vertex {vertex} is missing sampling state")
            actual = dict(sampler.candidates())
            if set(actual) != set(expected):
                raise UpdateError(f"vertex {vertex} sampler/graph neighbour mismatch")
            for dst, bias in expected.items():
                if abs(actual[dst] - bias) > 1e-9:
                    raise UpdateError(f"vertex {vertex} bias mismatch on edge to {dst}")
            sampler.check_invariants()
