"""Engine registry: name -> factory, used by the CLI and benchmark harness."""

from __future__ import annotations

from collections.abc import Callable

from repro.engines.base import RandomWalkEngine
from repro.engines.bingo import BingoEngine
from repro.engines.flowwalker import FlowWalkerEngine
from repro.engines.gsampler import GSamplerEngine
from repro.engines.knightking import KnightKingEngine
from repro.errors import EngineError

ENGINE_REGISTRY: dict[str, Callable[..., RandomWalkEngine]] = {
    BingoEngine.name: BingoEngine,
    KnightKingEngine.name: KnightKingEngine,
    GSamplerEngine.name: GSamplerEngine,
    FlowWalkerEngine.name: FlowWalkerEngine,
}


def engine_names() -> list[str]:
    """Registered engine names in registration order."""
    return list(ENGINE_REGISTRY)


def create_engine(name: str, **kwargs) -> RandomWalkEngine:
    """Instantiate an engine by name (keyword arguments forwarded)."""
    factory = ENGINE_REGISTRY.get(name)
    if factory is None:
        raise EngineError(
            f"unknown engine {name!r}; available engines: {', '.join(ENGINE_REGISTRY)}"
        )
    return factory(**kwargs)
