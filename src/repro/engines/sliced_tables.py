"""Per-vertex sliced storage for the fused frontier tables.

The fused frontier kernels (PR 1) gather from *global* concatenated
arrays — one slice per vertex — so a frontier of N walkers advances in a
fixed number of NumPy operations.  Until this PR the concatenation was a
monolith: any update invalidated the whole cache and the next query (or
the serve writer's warming pass) re-concatenated every vertex, an O(V)
cost per epoch that made the writer thread the scale ceiling.

:class:`SlicedTableStore` turns the monolith into a segment heap with a
per-vertex directory, the same amortized-doubling discipline
``DynamicGraph`` uses for its adjacency columns:

* Each vertex owns one segment ``[seg_offset[v], seg_offset[v] +
  seg_length[v])`` shared by every column in the store's schema.
* Re-deriving a vertex whose slice did not grow patches the segment in
  place; a grown slice is appended at the tail (capacity-doubled) and
  the old segment becomes waste.
* When waste exceeds the live payload the store compacts — one
  vectorized gather that re-packs every live segment — so the amortized
  cost of a flip stays proportional to the vertices the batch touched,
  never to the graph.

Engines keep a ``_frontier_dirty`` set instead of dropping their cache:
an update marks its touched vertices, and the next
:meth:`~repro.engines.base.RandomWalkEngine` table build repairs exactly
those slices.  :func:`warm_frontier_delta` wraps that repair for the
serve writer and reports what it cost as a :class:`FrontierDelta` — the
unit the epoch-delta publication path ships instead of a rebuilt world.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from collections.abc import Iterable, Mapping

import numpy as np

from repro.errors import ReproError

#: Waste below this many segment entries never triggers compaction (tiny
#: stores churn freely without paying repacks that save nothing).
_COMPACTION_SLACK = 1024

#: Smallest data-column capacity allocated once a store holds anything.
_MIN_CAPACITY = 16


@dataclass(frozen=True)
class FrontierDelta:
    """What one frontier-table repair touched.

    This is the publication unit of the epoch-delta serve path: after a
    batch is applied, warming re-derives ``vertices`` slices (the union
    of the dirty-sets of the applied and caught-up batches) instead of
    re-concatenating the world.  ``full_rebuild`` marks the repairs that
    did cost O(V) — the cold first build and the amortized compaction
    fallback — so the serve stats can account them separately.
    """

    #: Number of vertex slices re-derived by this repair.
    vertices: int
    #: True when the repair rebuilt the whole concatenation.
    full_rebuild: bool
    #: The ids of the repaired slices (``None`` for full rebuilds, whose
    #: "touched set" is the world).  The shard router serializes exactly
    #: these slices into the cross-process flip payload.
    vertex_ids: tuple[int, ...] | None = None


class SlicedTableStore:
    """Capacity-doubled global arrays with one segment per vertex.

    Parameters
    ----------
    schema:
        Mapping of column name to NumPy dtype.  All columns share the
        per-vertex segment layout, so one ``set_slice`` call replaces a
        vertex's entries across every column at once.
    """

    def __init__(self, schema: Mapping[str, np.dtype]) -> None:
        if not schema:
            raise ReproError("a sliced table store needs at least one column")
        self._schema = {name: np.dtype(dtype) for name, dtype in schema.items()}
        self._columns: dict[str, np.ndarray] = {
            name: np.empty(0, dtype=dtype) for name, dtype in self._schema.items()
        }
        self.seg_offset = np.zeros(0, dtype=np.int64)
        self.seg_length = np.zeros(0, dtype=np.int64)
        #: Tail high-water mark of the data columns (entries ever placed).
        self.used = 0
        #: Entries currently reachable through the directory.
        self.live = 0

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        return len(self.seg_offset)

    @property
    def waste(self) -> int:
        """Dead entries below the high-water mark (orphaned / shrunk slices)."""
        return self.used - self.live

    @property
    def capacity(self) -> int:
        return len(next(iter(self._columns.values())))

    def column(self, name: str) -> np.ndarray:
        """The full backing array of ``name`` (valid below ``used``)."""
        return self._columns[name]

    def reset(self, num_vertices: int) -> None:
        """Drop every segment and size the directory for ``num_vertices``."""
        self.seg_offset = np.zeros(num_vertices, dtype=np.int64)
        self.seg_length = np.zeros(num_vertices, dtype=np.int64)
        self.used = 0
        self.live = 0

    def ensure_vertices(self, num_vertices: int) -> None:
        """Grow the directory so ids below ``num_vertices`` are addressable.

        New vertices start with empty segments (length 0), which the
        frontier kernels already treat as "no out-edges".
        """
        current = len(self.seg_offset)
        if num_vertices <= current:
            return
        grown_offset = np.zeros(num_vertices, dtype=np.int64)
        grown_length = np.zeros(num_vertices, dtype=np.int64)
        grown_offset[:current] = self.seg_offset
        grown_length[:current] = self.seg_length
        self.seg_offset = grown_offset
        self.seg_length = grown_length

    # ------------------------------------------------------------------ #
    # slice mutation
    # ------------------------------------------------------------------ #
    def set_slice(self, vertex: int, parts: Mapping[str, np.ndarray]) -> int:
        """Replace ``vertex``'s segment across every column; returns its offset.

        Slices that did not grow are patched in place (the shrink gap
        becomes waste); grown slices are appended at the capacity-doubled
        tail and the old segment is orphaned.  Either way the directory
        points at consistent data when this returns.
        """
        if set(parts) != set(self._schema):
            raise ReproError(
                "slice parts must cover exactly the store schema: expected "
                f"{sorted(self._schema)}, got {sorted(parts)}"
            )
        length = len(next(iter(parts.values())))
        for name, values in parts.items():
            if len(values) != length:
                raise ReproError(
                    f"slice column {name!r} has {len(values)} entries, "
                    f"expected {length}"
                )
        if length == 0:
            self.clear_slice(vertex)
            return 0
        old_length = int(self.seg_length[vertex])
        if 0 < length <= old_length:
            offset = int(self.seg_offset[vertex])
        else:
            # Orphan the old segment (if any) and append at the tail.
            offset = self.used
            self._ensure_capacity(offset + length)
            self.used = offset + length
        for name, values in parts.items():
            self._columns[name][offset : offset + length] = values
        self.seg_offset[vertex] = offset
        self.seg_length[vertex] = length
        self.live += length - old_length
        return offset

    def clear_slice(self, vertex: int) -> None:
        """Drop ``vertex``'s segment (its entries become waste)."""
        self.live -= int(self.seg_length[vertex])
        self.seg_offset[vertex] = 0
        self.seg_length[vertex] = 0

    def _ensure_capacity(self, needed: int) -> None:
        capacity = self.capacity
        if needed <= capacity:
            return
        grown = max(2 * capacity, needed, _MIN_CAPACITY)
        for name, column in self._columns.items():
            replacement = np.empty(grown, dtype=column.dtype)
            replacement[: self.used] = column[: self.used]
            self._columns[name] = replacement

    # ------------------------------------------------------------------ #
    # compaction
    # ------------------------------------------------------------------ #
    def needs_compaction(self) -> bool:
        """Whether dead entries outweigh the live payload.

        The threshold keeps total work amortized: a compaction pass costs
        O(live), and reaching the threshold again requires at least
        O(live) further slice churn.
        """
        return self.waste > max(self.live, _COMPACTION_SLACK)

    def compact(self) -> None:
        """Re-pack every live segment contiguously (one vectorized gather)."""
        live_vertices = np.nonzero(self.seg_length > 0)[0]
        if len(live_vertices) == 0:
            self.used = 0
            self.live = 0
            return
        # Stable layout: keep the segments in their current storage order.
        live_vertices = live_vertices[np.argsort(self.seg_offset[live_vertices], kind="stable")]
        lengths = self.seg_length[live_vertices]
        ends = np.cumsum(lengths)
        total = int(ends[-1])
        out_starts = ends - lengths
        # For each packed position, the source position it pulls from:
        # segment v's packed entries [start, start+len) copy from
        # [old_offset, old_offset+len).  Fancy indexing gathers into a
        # fresh array first, so overlapping moves are safe.
        gather = np.repeat(self.seg_offset[live_vertices] - out_starts, lengths) + np.arange(
            total, dtype=np.int64
        )
        for column in self._columns.values():
            column[:total] = column[gather]
        self.seg_offset[live_vertices] = out_starts
        self.used = total
        self.live = total


def mark_frontier_dirty(engine, vertices: Iterable[int]) -> None:
    """Record ``vertices`` as needing slice repair on the next table build.

    Before the first build there is nothing to repair incrementally —
    the cache is still ``None`` and the next :meth:`_frontier_tables`
    call performs the cold full concatenation anyway.
    """
    if engine._frontier_cache is None:
        return
    engine._frontier_dirty.update(int(vertex) for vertex in vertices)


def warm_frontier_delta(engine) -> FrontierDelta:
    """Repair the engine's fused tables and report what the repair cost.

    This is the serve writer's warming entry point: after applying a
    batch (and any catch-up replays, whose dirty vertices union into the
    same set) it re-derives only the dirty slices.  Cold first builds
    and compaction fallbacks surface as ``full_rebuild`` deltas.
    """
    dirty_ids = tuple(sorted(engine._frontier_dirty))
    cold = engine._frontier_cache is None
    builds_before = engine.frontier_full_builds
    engine._frontier_tables()
    if cold or engine.frontier_full_builds > builds_before:
        return FrontierDelta(
            vertices=int(engine._require_graph().num_vertices), full_rebuild=True
        )
    return FrontierDelta(
        vertices=len(dirty_ids), full_rebuild=False, vertex_ids=dirty_ids
    )


# --------------------------------------------------------------------- #
# cross-process serialization (the shard-router flip payload)
# --------------------------------------------------------------------- #
def pack_arrays(arrays: Mapping[str, np.ndarray]) -> bytes:
    """Serialize named arrays into one self-describing byte blob.

    The NPZ container (``np.savez`` with pickling disabled) carries
    dtypes and shapes, so the receiving process reconstructs the arrays
    without any schema side-channel — this is what the router writes
    into shared memory instead of re-pickling engines.
    """
    buffer = io.BytesIO()
    np.savez(buffer, **{name: np.ascontiguousarray(a) for name, a in arrays.items()})
    return buffer.getvalue()


def unpack_arrays(blob) -> dict[str, np.ndarray]:
    """Inverse of :func:`pack_arrays` (accepts bytes or a buffer view)."""
    with np.load(io.BytesIO(bytes(blob)), allow_pickle=False) as archive:
        return {name: archive[name] for name in archive.files}


def export_store_state(store: SlicedTableStore, prefix: str = "") -> dict[str, np.ndarray]:
    """One store's full state as plain arrays (directory + live columns).

    Only the prefix below the high-water mark ships; segment offsets
    reference positions within that prefix, so they stay valid verbatim
    on the adopting side.
    """
    state = {
        prefix + "seg_offset": store.seg_offset.copy(),
        prefix + "seg_length": store.seg_length.copy(),
        prefix + "counters": np.array([store.used, store.live], dtype=np.int64),
    }
    for name in store._schema:
        state[prefix + name] = store.column(name)[: store.used].copy()
    return state


def adopt_store_state(
    store: SlicedTableStore, state: Mapping[str, np.ndarray], prefix: str = ""
) -> None:
    """Replace ``store``'s contents with an :func:`export_store_state` snapshot."""
    used, live = (int(value) for value in state[prefix + "counters"])
    store.seg_offset = np.asarray(state[prefix + "seg_offset"], dtype=np.int64).copy()
    store.seg_length = np.asarray(state[prefix + "seg_length"], dtype=np.int64).copy()
    store.used = used
    store.live = live
    for name, dtype in store._schema.items():
        column = np.empty(used, dtype=dtype)
        column[:] = state[prefix + name][:used]
        store._columns[name] = column


def export_store_slices(
    store: SlicedTableStore, vertices: Iterable[int], prefix: str = ""
) -> dict[str, np.ndarray]:
    """The touched vertices' segments as concatenated per-column arrays.

    This is the O(touched) patch payload: ``vertices`` + per-vertex
    ``lengths`` + each column's slices back to back.  A length of zero
    means "this vertex's slice was cleared" on the applying side.
    """
    ids = np.asarray(sorted(int(v) for v in vertices), dtype=np.int64)
    lengths = np.zeros(len(ids), dtype=np.int64)
    in_directory = ids < store.num_vertices
    lengths[in_directory] = store.seg_length[ids[in_directory]]
    payload = {prefix + "vertices": ids, prefix + "lengths": lengths}
    for name in store._schema:
        column = store.column(name)
        pieces = [
            column[store.seg_offset[v] : store.seg_offset[v] + length]
            for v, length in zip(ids, lengths)
            if length > 0
        ]
        payload[prefix + name] = (
            np.concatenate(pieces)
            if pieces
            else np.empty(0, dtype=store._schema[name])
        )
    return payload


def apply_store_slices(
    store: SlicedTableStore,
    payload: Mapping[str, np.ndarray],
    prefix: str = "",
    num_vertices: int | None = None,
) -> None:
    """Apply an :func:`export_store_slices` patch to a replica store.

    Untouched segments are untouched here too — the point of the delta
    path — and the amortized compaction discipline carries over: churn on
    the replica repacks only when waste outweighs the live payload.
    """
    if num_vertices is not None:
        store.ensure_vertices(int(num_vertices))
    ids = payload[prefix + "vertices"]
    lengths = payload[prefix + "lengths"]
    cursor = 0
    columns = {name: payload[prefix + name] for name in store._schema}
    for v, length in zip(ids, lengths):
        vertex = int(v)
        length = int(length)
        if vertex >= store.num_vertices:
            store.ensure_vertices(vertex + 1)
        if length == 0:
            store.clear_slice(vertex)
            continue
        store.set_slice(
            vertex,
            {
                name: column[cursor : cursor + length]
                for name, column in columns.items()
            },
        )
        cursor += length
    if store.needs_compaction():
        store.compact()


__all__ = [
    "FrontierDelta",
    "SlicedTableStore",
    "adopt_store_state",
    "apply_store_slices",
    "export_store_slices",
    "export_store_state",
    "mark_frontier_dirty",
    "pack_arrays",
    "unpack_arrays",
    "warm_frontier_delta",
]
