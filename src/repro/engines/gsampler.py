"""gSampler-style baseline: ITS (prefix-sum) sampling over matrix-like state.

gSampler (SOSP'23) exposes matrix-centric APIs whose biased sampling boils
down to per-vertex CDF arrays searched with binary search: O(log d) sampling,
O(d) (re)construction, plus extra working memory for the matrix
materialisations (the reason it is the most memory-hungry system in Table 3).
Like KnightKing it has no dynamic-graph path, so batches trigger a
reconstruction of the sampling state.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.memory_model import MemoryReport
from repro.engines.base import PHASE_REBUILD, RandomWalkEngine
from repro.graph.update_batch import UpdateBatch
from repro.graph.update_stream import GraphUpdate, UpdateKind
from repro.sampling.its import InverseTransformSampler
from repro.utils.rng import RandomSource, spawn_rng

#: Extra working-state factor modelling gSampler's matrix materialisations
#: (intermediate frontier/probability matrices kept alongside the CSR state).
_MATRIX_OVERHEAD_FACTOR = 2.0


class GSamplerEngine(RandomWalkEngine):
    """Prefix-sum (ITS) engine with rebuild-on-update semantics."""

    name = "gsampler"
    supports_batch = True

    def __init__(self, *, rng: RandomSource = None, full_rebuild_on_batch: bool = True) -> None:
        super().__init__(rng=rng)
        self.full_rebuild_on_batch = full_rebuild_on_batch
        self._samplers: Dict[int, InverseTransformSampler] = {}
        # Global CDF concatenation for the fused frontier kernel.
        self._frontier_cache: Optional[Dict[str, np.ndarray]] = None

    # ------------------------------------------------------------------ #
    def _build_state(self) -> None:
        graph = self._require_graph()
        self._samplers = {}
        self._frontier_cache = None
        for vertex in self._build_vertex_ids():
            if graph.degree(vertex) == 0:
                continue
            self._samplers[vertex] = self._build_vertex_sampler(vertex)

    def _build_vertex_sampler(self, vertex: int) -> InverseTransformSampler:
        graph = self._require_graph()
        sampler = InverseTransformSampler(rng=spawn_rng(self._rng, vertex))
        # Bulk-load straight from the zero-copy adjacency views.
        sampler.insert_many(graph.neighbor_array(vertex), graph.bias_array(vertex))
        return sampler

    def _rebuild_vertex(self, vertex: int) -> None:
        graph = self._require_graph()
        self._frontier_cache = None
        start = time.perf_counter()
        if graph.degree(vertex) == 0:
            self._samplers.pop(vertex, None)
        else:
            self._samplers[vertex] = self._build_vertex_sampler(vertex)
        self.breakdown.add(PHASE_REBUILD, time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    def _on_insert(self, src: int, dst: int, bias: float) -> None:
        self._frontier_cache = None
        sampler = self._samplers.get(src)
        if sampler is None:
            self._rebuild_vertex(src)
            return
        # ITS supports O(1) append-only insertion (extend the prefix sums).
        sampler.insert(dst, bias)

    def _on_delete(self, src: int, dst: int) -> None:
        # Interior deletion invalidates the CDF: rebuild the vertex, O(d).
        self._rebuild_vertex(src)

    def apply_batch(self, updates: Sequence[GraphUpdate]) -> None:
        """Apply the edits columnar (bulk per-vertex kind-runs), then rebuild."""
        graph = self._require_graph()
        batch = UpdateBatch.coerce(updates)
        self._frontier_cache = None
        touched = self._apply_batch_to_graph(batch)
        start = time.perf_counter()
        if self.full_rebuild_on_batch:
            self._build_state()
        else:
            # Sorted order keeps the per-vertex RNG-stream assignment (one
            # spawn_rng per rebuild) identical across ingestion paths.
            for vertex in sorted(touched):
                if graph.degree(vertex) == 0:
                    self._samplers.pop(vertex, None)
                else:
                    self._samplers[vertex] = self._build_vertex_sampler(vertex)
        self.breakdown.add(PHASE_REBUILD, time.perf_counter() - start)
        self.updates_applied += len(batch)

    def apply_batch_scalar(self, updates: Sequence[GraphUpdate]) -> None:
        """The legacy per-edge batch path (reference for equivalence tests)."""
        graph = self._require_graph()
        self._frontier_cache = None
        touched = set()
        for update in updates:
            graph.ensure_vertex(update.src)
            graph.ensure_vertex(update.dst)
            if update.kind is UpdateKind.INSERT:
                graph.add_edge(update.src, update.dst, update.bias)
            else:
                graph.remove_edge(update.src, update.dst)
            touched.add(update.src)
        start = time.perf_counter()
        if self.full_rebuild_on_batch:
            self._build_state()
        else:
            for vertex in sorted(touched):
                if graph.degree(vertex) == 0:
                    self._samplers.pop(vertex, None)
                else:
                    self._samplers[vertex] = self._build_vertex_sampler(vertex)
        self.breakdown.add(PHASE_REBUILD, time.perf_counter() - start)
        self.updates_applied += len(updates)

    # ------------------------------------------------------------------ #
    def _sample(self, vertex: int) -> Optional[int]:
        sampler = self._samplers.get(vertex)
        if sampler is None or len(sampler) == 0:
            return None
        return sampler.sample()

    def _sample_batch(
        self, vertex: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        sampler = self._samplers.get(vertex)
        if sampler is None or len(sampler) == 0:
            return np.full(count, -1, dtype=np.int64)
        return sampler.sample_batch(count, rng)

    def _frontier_tables(self) -> Dict[str, np.ndarray]:
        """Concatenate every vertex's CDF into one global running prefix sum.

        Because each vertex's local prefix sums are shifted by the running
        total of all earlier segments, the concatenation stays globally
        nondecreasing — so a single :func:`numpy.searchsorted` resolves the
        whole frontier's binary searches at once.  Built lazily; any update
        invalidates it.
        """
        if self._frontier_cache is not None:
            return self._frontier_cache
        graph = self._require_graph()
        num_vertices = graph.num_vertices
        seg_offset = np.zeros(num_vertices, dtype=np.int64)
        seg_length = np.zeros(num_vertices, dtype=np.int64)
        base = np.zeros(num_vertices, dtype=np.float64)
        totals = np.zeros(num_vertices, dtype=np.float64)
        cum_parts = []
        id_parts = []
        cursor = 0
        running = 0.0
        for vertex, sampler in self._samplers.items():
            if len(sampler) == 0:
                continue
            ids, cumulative = sampler.numpy_tables()
            seg_offset[vertex] = cursor
            seg_length[vertex] = len(ids)
            base[vertex] = running
            totals[vertex] = cumulative[-1]
            cum_parts.append(cumulative + running)
            id_parts.append(ids)
            cursor += len(ids)
            running += float(cumulative[-1])
        self._frontier_cache = {
            "seg_offset": seg_offset,
            "seg_length": seg_length,
            "base": base,
            "totals": totals,
            "cumulative": (
                np.concatenate(cum_parts) if cum_parts else np.empty(0, dtype=np.float64)
            ),
            "ids": (
                np.concatenate(id_parts) if id_parts else np.empty(0, dtype=np.int64)
            ),
        }
        return self._frontier_cache

    def _sample_frontier(
        self, vertices: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        tables = self._frontier_tables()
        out = np.full(len(vertices), -1, dtype=np.int64)
        limit = len(tables["seg_length"])
        if limit == 0:
            return out
        # Out-of-range vertices — negative ids (retired-walker padding) or
        # ids past the table range — draw -1, matching the scalar path.
        in_range = (vertices >= 0) & (vertices < limit)
        safe = np.clip(vertices, 0, limit - 1)
        lengths = np.where(in_range, tables["seg_length"][safe], 0)
        live = np.nonzero(lengths > 0)[0]
        if len(live) == 0:
            return out
        query = vertices[live]
        draws = tables["base"][query] + rng.random(len(live)) * tables["totals"][query]
        positions = np.searchsorted(tables["cumulative"], draws, side="right")
        # Clamp into the query's own segment against float boundary drift.
        low = tables["seg_offset"][query]
        high = low + tables["seg_length"][query] - 1
        np.clip(positions, low, high, out=positions)
        out[live] = tables["ids"][positions]
        return out

    # ------------------------------------------------------------------ #
    def memory_report(self) -> MemoryReport:
        report = MemoryReport()
        graph = self._require_graph()
        report.add("graph", graph.num_arcs * (4 + 8) + graph.num_vertices * 8)
        cdf_bytes = sum(sampler.memory_bytes() for sampler in self._samplers.values())
        report.add("cdf_arrays", cdf_bytes)
        report.add("matrix_working_state", int(cdf_bytes * _MATRIX_OVERHEAD_FACTOR))
        return report
