"""gSampler-style baseline: ITS (prefix-sum) sampling over matrix-like state.

gSampler (SOSP'23) exposes matrix-centric APIs whose biased sampling boils
down to per-vertex CDF arrays searched with binary search: O(log d) sampling,
O(d) (re)construction, plus extra working memory for the matrix
materialisations (the reason it is the most memory-hungry system in Table 3).
Like KnightKing it has no dynamic-graph path, so batches trigger a
reconstruction of the sampling state.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from repro.core.memory_model import MemoryReport
from repro.engines.base import PHASE_REBUILD, RandomWalkEngine
from repro.engines.sliced_tables import (
    FrontierDelta,
    SlicedTableStore,
    adopt_store_state,
    apply_store_slices,
    export_store_slices,
    export_store_state,
    mark_frontier_dirty,
    warm_frontier_delta,
)
from repro.graph.update_batch import UpdateBatch
from repro.graph.update_stream import GraphUpdate, UpdateKind
from repro.sampling.its import InverseTransformSampler
from repro.utils.rng import RandomSource, spawn_rng

#: Extra working-state factor modelling gSampler's matrix materialisations
#: (intermediate frontier/probability matrices kept alongside the CSR state).
_MATRIX_OVERHEAD_FACTOR = 2.0


class GSamplerEngine(RandomWalkEngine):
    """Prefix-sum (ITS) engine with rebuild-on-update semantics."""

    name = "gsampler"
    supports_batch = True

    def __init__(self, *, rng: RandomSource = None, full_rebuild_on_batch: bool = True) -> None:
        super().__init__(rng=rng)
        self.full_rebuild_on_batch = full_rebuild_on_batch
        self._samplers: dict[int, InverseTransformSampler] = {}
        # Global CDF concatenation for the fused frontier kernel, kept as
        # per-vertex sliced segments repaired through a dirty-set.  The
        # stored cumulative sums are *local* (per segment, no running
        # global prefix), so patching one vertex never shifts another's.
        self._frontier_cache: dict[str, np.ndarray] | None = None
        self._frontier_dirty: set[int] = set()
        self._frontier_store = SlicedTableStore(
            {"ids": np.int64, "cumulative": np.float64}
        )
        #: Cold/compaction full concatenations performed (delta accounting).
        self.frontier_full_builds = 0

    # ------------------------------------------------------------------ #
    def _build_state(self) -> None:
        self._rebuild_samplers()
        self._frontier_cache = None
        self._frontier_dirty.clear()

    def _rebuild_samplers(self) -> None:
        """Recreate every per-vertex CDF from the adjacency.

        CDF *content* is a deterministic function of the adjacency (the
        per-sampler rng only drives scalar draws), so a whole-graph reload
        leaves untouched vertices' frontier slices valid — the batch paths
        call this and mark only their touched vertices dirty.
        """
        graph = self._require_graph()
        self._samplers = {}
        for vertex in self._build_vertex_ids():
            if graph.degree(vertex) == 0:
                continue
            self._samplers[vertex] = self._build_vertex_sampler(vertex)

    def _build_vertex_sampler(self, vertex: int) -> InverseTransformSampler:
        graph = self._require_graph()
        sampler = InverseTransformSampler(rng=spawn_rng(self._rng, vertex))
        # Bulk-load straight from the zero-copy adjacency views.
        sampler.insert_many(graph.neighbor_array(vertex), graph.bias_array(vertex))
        return sampler

    def _rebuild_vertex(self, vertex: int) -> None:
        graph = self._require_graph()
        mark_frontier_dirty(self, (vertex,))
        start = time.perf_counter()
        if graph.degree(vertex) == 0:
            self._samplers.pop(vertex, None)
        else:
            self._samplers[vertex] = self._build_vertex_sampler(vertex)
        self.breakdown.add(PHASE_REBUILD, time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    def _on_insert(self, src: int, dst: int, bias: float) -> None:
        sampler = self._samplers.get(src)
        if sampler is None:
            self._rebuild_vertex(src)
            return
        # ITS supports O(1) append-only insertion (extend the prefix sums).
        mark_frontier_dirty(self, (src,))
        sampler.insert(dst, bias)

    def _on_delete(self, src: int, dst: int) -> None:
        # Interior deletion invalidates the CDF: rebuild the vertex, O(d).
        self._rebuild_vertex(src)

    def apply_batch(self, updates: Sequence[GraphUpdate]) -> None:
        """Apply the edits columnar (bulk per-vertex kind-runs), then rebuild."""
        graph = self._require_graph()
        batch = UpdateBatch.coerce(updates)
        touched = self._apply_batch_to_graph(batch)
        mark_frontier_dirty(self, touched)
        start = time.perf_counter()
        if self.full_rebuild_on_batch:
            self._rebuild_samplers()
        else:
            # Sorted order keeps the per-vertex RNG-stream assignment (one
            # spawn_rng per rebuild) identical across ingestion paths.
            for vertex in sorted(touched):
                if graph.degree(vertex) == 0:
                    self._samplers.pop(vertex, None)
                else:
                    self._samplers[vertex] = self._build_vertex_sampler(vertex)
        self.breakdown.add(PHASE_REBUILD, time.perf_counter() - start)
        self.updates_applied += len(batch)

    def apply_batch_scalar(self, updates: Sequence[GraphUpdate]) -> None:
        """The legacy per-edge batch path (reference for equivalence tests)."""
        graph = self._require_graph()
        touched = set()
        for update in updates:
            graph.ensure_vertex(update.src)
            graph.ensure_vertex(update.dst)
            if update.kind is UpdateKind.INSERT:
                graph.add_edge(update.src, update.dst, update.bias)
            else:
                graph.remove_edge(update.src, update.dst)
            touched.add(update.src)
        mark_frontier_dirty(self, touched)
        start = time.perf_counter()
        if self.full_rebuild_on_batch:
            self._rebuild_samplers()
        else:
            for vertex in sorted(touched):
                if graph.degree(vertex) == 0:
                    self._samplers.pop(vertex, None)
                else:
                    self._samplers[vertex] = self._build_vertex_sampler(vertex)
        self.breakdown.add(PHASE_REBUILD, time.perf_counter() - start)
        self.updates_applied += len(updates)

    # ------------------------------------------------------------------ #
    def _sample(self, vertex: int) -> int | None:
        sampler = self._samplers.get(vertex)
        if sampler is None or len(sampler) == 0:
            return None
        return sampler.sample()

    def _sample_batch(
        self, vertex: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        sampler = self._samplers.get(vertex)
        if sampler is None or len(sampler) == 0:
            return np.full(count, -1, dtype=np.int64)
        return sampler.sample_batch(count, rng)

    def _vertex_slice_parts(
        self, sampler: InverseTransformSampler
    ) -> dict[str, np.ndarray]:
        ids, cumulative = sampler.numpy_tables()
        return {"ids": ids, "cumulative": cumulative}

    def _frontier_tables(self) -> dict[str, np.ndarray]:
        """Per-vertex *local* CDF slices concatenated into global arrays.

        Each segment keeps its own prefix sums (no running global shift),
        so repairing one vertex's slice never perturbs another segment's
        values — the property that lets an update batch patch only its
        touched vertices.  The kernel resolves each walker with a bounded
        binary search inside its own segment, bitwise-identical to the
        scalar ``sample_batch`` search.  Built cold once; afterwards the
        dirty-set repairs exactly the touched slices (compacting the store
        when accumulated waste outweighs the live payload), so a flip
        costs O(touched), not O(V).
        """
        if self._frontier_cache is not None and not self._frontier_dirty:
            return self._frontier_cache
        graph = self._require_graph()
        store = self._frontier_store
        if self._frontier_cache is None:
            self.frontier_full_builds += 1
            self._frontier_dirty.clear()
            store.reset(graph.num_vertices)
            for vertex, sampler in self._samplers.items():
                if len(sampler) == 0:
                    continue
                store.set_slice(vertex, self._vertex_slice_parts(sampler))
        else:
            store.ensure_vertices(graph.num_vertices)
            for vertex in sorted(self._frontier_dirty):
                sampler = self._samplers.get(vertex)
                if sampler is None or len(sampler) == 0:
                    store.clear_slice(vertex)
                else:
                    store.set_slice(vertex, self._vertex_slice_parts(sampler))
            self._frontier_dirty.clear()
            if store.needs_compaction():
                store.compact()
        # Re-derive the view dict every repair: capacity growth and
        # compaction replace the backing arrays.
        self._refresh_frontier_views()
        return self._frontier_cache

    def _refresh_frontier_views(self) -> None:
        store = self._frontier_store
        self._frontier_cache = {
            "seg_offset": store.seg_offset,
            "seg_length": store.seg_length,
            "cumulative": store.column("cumulative"),
            "ids": store.column("ids"),
        }

    def warm_frontier_tables(self) -> FrontierDelta:
        """Repair the fused tables now; reports the slices it re-derived."""
        return warm_frontier_delta(self)

    # ------------------------------------------------------------------ #
    # cross-process frontier state (the shard-router transport)
    # ------------------------------------------------------------------ #
    def export_frontier_state(self) -> dict[str, np.ndarray]:
        """The CDF store's full state as plain arrays (shard boot payload)."""
        self._frontier_tables()
        state = {
            "num_vertices": np.array(
                [self._require_graph().num_vertices], dtype=np.int64
            )
        }
        state.update(export_store_state(self._frontier_store))
        return state

    def adopt_frontier_state(self, state: dict[str, np.ndarray]) -> None:
        """Replace the fused tables with a writer's exported snapshot."""
        adopt_store_state(self._frontier_store, state)
        self._frontier_dirty.clear()
        self._refresh_frontier_views()

    def export_frontier_patch(self, vertices) -> dict[str, np.ndarray]:
        """The touched vertices' CDF slices (local prefix sums, patch-safe)."""
        self._frontier_tables()
        payload = export_store_slices(self._frontier_store, vertices)
        payload["num_vertices"] = np.array(
            [self._require_graph().num_vertices], dtype=np.int64
        )
        return payload

    def apply_frontier_patch(self, payload: dict[str, np.ndarray]) -> None:
        """Apply a writer's patch; untouched slices stay untouched."""
        for vertex in payload["vertices"]:
            self._samplers.pop(int(vertex), None)
        apply_store_slices(
            self._frontier_store,
            payload,
            num_vertices=int(payload["num_vertices"][0]),
        )
        self._frontier_dirty.clear()
        self._refresh_frontier_views()

    def _sample_frontier(
        self, vertices: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        tables = self._frontier_tables()
        out = np.full(len(vertices), -1, dtype=np.int64)
        limit = len(tables["seg_length"])
        if limit == 0:
            return out
        # Out-of-range vertices — negative ids (retired-walker padding) or
        # ids past the table range — draw -1, matching the scalar path.
        in_range = (vertices >= 0) & (vertices < limit)
        safe = np.clip(vertices, 0, limit - 1)
        lengths = np.where(in_range, tables["seg_length"][safe], 0)
        live = np.nonzero(lengths > 0)[0]
        if len(live) == 0:
            return out
        query = vertices[live]
        cumulative = tables["cumulative"]
        low = tables["seg_offset"][query]
        last = low + lengths[live] - 1
        # Segment totals live at each segment's last cumulative entry.
        draws = rng.random(len(live)) * cumulative[last]
        # Bounded per-segment binary search: the first position in
        # [low, last] whose cumulative exceeds the draw, clamping to the
        # segment end against float boundary drift — the vectorized form
        # of the scalar path's right-bisect over the local prefix sums.
        lo = low.copy()
        hi = last.copy()
        active = lo < hi
        while active.any():
            mid = (lo + hi) >> 1
            go_right = active & (cumulative[mid] <= draws)
            lo = np.where(go_right, mid + 1, lo)
            hi = np.where(active & ~go_right, mid, hi)
            active = lo < hi
        out[live] = tables["ids"][lo]
        return out

    # ------------------------------------------------------------------ #
    def memory_report(self) -> MemoryReport:
        report = MemoryReport()
        graph = self._require_graph()
        report.add("graph", graph.num_arcs * (4 + 8) + graph.num_vertices * 8)
        cdf_bytes = sum(sampler.memory_bytes() for sampler in self._samplers.values())
        report.add("cdf_arrays", cdf_bytes)
        report.add("matrix_working_state", int(cdf_bytes * _MATRIX_OVERHEAD_FACTOR))
        return report
