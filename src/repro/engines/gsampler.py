"""gSampler-style baseline: ITS (prefix-sum) sampling over matrix-like state.

gSampler (SOSP'23) exposes matrix-centric APIs whose biased sampling boils
down to per-vertex CDF arrays searched with binary search: O(log d) sampling,
O(d) (re)construction, plus extra working memory for the matrix
materialisations (the reason it is the most memory-hungry system in Table 3).
Like KnightKing it has no dynamic-graph path, so batches trigger a
reconstruction of the sampling state.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

from repro.core.memory_model import MemoryReport
from repro.engines.base import PHASE_REBUILD, RandomWalkEngine
from repro.graph.update_stream import GraphUpdate, UpdateKind
from repro.sampling.its import InverseTransformSampler
from repro.utils.rng import RandomSource, spawn_rng

#: Extra working-state factor modelling gSampler's matrix materialisations
#: (intermediate frontier/probability matrices kept alongside the CSR state).
_MATRIX_OVERHEAD_FACTOR = 2.0


class GSamplerEngine(RandomWalkEngine):
    """Prefix-sum (ITS) engine with rebuild-on-update semantics."""

    name = "gsampler"

    def __init__(self, *, rng: RandomSource = None, full_rebuild_on_batch: bool = True) -> None:
        super().__init__(rng=rng)
        self.full_rebuild_on_batch = full_rebuild_on_batch
        self._samplers: Dict[int, InverseTransformSampler] = {}

    # ------------------------------------------------------------------ #
    def _build_state(self) -> None:
        graph = self._require_graph()
        self._samplers = {}
        for vertex in range(graph.num_vertices):
            if graph.degree(vertex) == 0:
                continue
            self._samplers[vertex] = self._build_vertex_sampler(vertex)

    def _build_vertex_sampler(self, vertex: int) -> InverseTransformSampler:
        graph = self._require_graph()
        sampler = InverseTransformSampler(rng=spawn_rng(self._rng, vertex))
        for edge in graph.out_edges(vertex):
            sampler.insert(edge.dst, edge.bias)
        return sampler

    def _rebuild_vertex(self, vertex: int) -> None:
        graph = self._require_graph()
        start = time.perf_counter()
        if graph.degree(vertex) == 0:
            self._samplers.pop(vertex, None)
        else:
            self._samplers[vertex] = self._build_vertex_sampler(vertex)
        self.breakdown.add(PHASE_REBUILD, time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    def _on_insert(self, src: int, dst: int, bias: float) -> None:
        sampler = self._samplers.get(src)
        if sampler is None:
            self._rebuild_vertex(src)
            return
        # ITS supports O(1) append-only insertion (extend the prefix sums).
        sampler.insert(dst, bias)

    def _on_delete(self, src: int, dst: int) -> None:
        # Interior deletion invalidates the CDF: rebuild the vertex, O(d).
        self._rebuild_vertex(src)

    def apply_batch(self, updates: Sequence[GraphUpdate]) -> None:
        graph = self._require_graph()
        touched = set()
        for update in updates:
            graph.ensure_vertex(update.src)
            graph.ensure_vertex(update.dst)
            if update.kind is UpdateKind.INSERT:
                graph.add_edge(update.src, update.dst, update.bias)
            else:
                graph.remove_edge(update.src, update.dst)
            touched.add(update.src)
        start = time.perf_counter()
        if self.full_rebuild_on_batch:
            self._build_state()
        else:
            for vertex in touched:
                if graph.degree(vertex) == 0:
                    self._samplers.pop(vertex, None)
                else:
                    self._samplers[vertex] = self._build_vertex_sampler(vertex)
        self.breakdown.add(PHASE_REBUILD, time.perf_counter() - start)
        self.updates_applied += len(updates)

    # ------------------------------------------------------------------ #
    def _sample(self, vertex: int) -> Optional[int]:
        sampler = self._samplers.get(vertex)
        if sampler is None or len(sampler) == 0:
            return None
        return sampler.sample()

    # ------------------------------------------------------------------ #
    def memory_report(self) -> MemoryReport:
        report = MemoryReport()
        graph = self._require_graph()
        report.add("graph", graph.num_arcs * (4 + 8) + graph.num_vertices * 8)
        cdf_bytes = sum(sampler.memory_bytes() for sampler in self._samplers.values())
        report.add("cdf_arrays", cdf_bytes)
        report.add("matrix_working_state", int(cdf_bytes * _MATRIX_OVERHEAD_FACTOR))
        return report
