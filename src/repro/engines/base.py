"""Common interface for random-walk engines.

An engine owns a :class:`~repro.graph.dynamic_graph.DynamicGraph` plus
whatever per-vertex sampling state its design requires, and exposes:

* first-order biased neighbour sampling (the operation every walk
  application reduces to),
* streaming updates (one edge at a time) and batched updates (a list of
  edges ingested together),
* a modelled memory report and a wall-clock time breakdown split into the
  phases the paper's figures use (``insert``, ``delete``, ``rebuild``,
  ``sampling``).
"""

from __future__ import annotations

import abc
import time
from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.memory_model import MemoryReport
from repro.errors import UpdateError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.update_batch import UpdateBatch
from repro.graph.update_stream import GraphUpdate, UpdateKind
from repro.utils.rng import NumpySource, RandomSource, ensure_np_rng, ensure_rng
from repro.utils.timing import TimeBreakdown

#: Phase names used in every engine's time breakdown.
PHASE_INSERT = "insert"
PHASE_DELETE = "delete"
PHASE_REBUILD = "rebuild"
PHASE_SAMPLING = "sampling"


class RandomWalkEngine(abc.ABC):
    """Abstract dynamic-graph random walk engine."""

    #: Human-readable engine name (used by the registry and reports).
    name: str = "abstract"

    #: Whether :meth:`sample_neighbors` runs a real vectorized kernel.  When
    #: ``False`` the batched API still works but falls back to a scalar loop,
    #: so the walk frontier can decide whether batching pays off.
    supports_batch: bool = False

    #: Co-located walker groups smaller than this use the scalar draw inside
    #: :meth:`sample_frontier` — the fixed cost of a vectorized kernel call
    #: only amortizes once a few walkers share a vertex.
    kernel_threshold: int = 2

    def __init__(self, *, rng: RandomSource = None) -> None:
        self._rng = ensure_rng(rng)
        self.graph: DynamicGraph | None = None
        self.breakdown = TimeBreakdown()
        self.updates_applied = 0
        self.samples_drawn = 0
        #: Vertices this engine builds sampling state for; ``None`` means all
        #: (the single-device default).  Set by :meth:`build_shard`.
        self._shard_owned: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def build(self, graph: DynamicGraph) -> None:
        """Adopt ``graph`` (by reference) and build the engine's sampling state."""
        self.graph = graph
        start = time.perf_counter()
        self._build_state()
        self.breakdown.add(PHASE_REBUILD, time.perf_counter() - start)

    @classmethod
    def for_shard(cls, graph, owned_vertices, **kwargs) -> RandomWalkEngine:
        """Build an engine whose sampling state covers only ``owned_vertices``.

        The shard-parallel walk runner gives each worker the full (shared,
        read-only) topology — walkers are handed off between shards, and
        node2vec probes arbitrary edges — but each worker only constructs
        the per-vertex sampling structures of the vertices its shard owns.
        ``graph`` is typically a
        :class:`~repro.graph.partition.ShardSubgraph` view over the
        shared-memory columns; any object with the ``DynamicGraph`` read API
        works.  With ``owned_vertices`` spanning every vertex this is
        exactly :meth:`build` (the single-shard case the equivalence tests
        pin down).
        """
        engine = cls(**kwargs)
        engine.build_shard(graph, owned_vertices)
        return engine

    def build_shard(self, graph, owned_vertices) -> None:
        """Adopt ``graph`` but restrict sampling state to ``owned_vertices``."""
        self._shard_owned = np.ascontiguousarray(owned_vertices, dtype=np.int64)
        self.build(graph)

    def _build_vertex_ids(self):
        """Vertices :meth:`_build_state` constructs samplers for, in order."""
        graph = self._require_graph()
        if self._shard_owned is None:
            return range(graph.num_vertices)
        return self._shard_owned.tolist()

    @abc.abstractmethod
    def _build_state(self) -> None:
        """Construct per-vertex sampling structures for the adopted graph."""

    def _require_graph(self) -> DynamicGraph:
        if self.graph is None:
            raise UpdateError(f"engine {self.name!r} has not been built from a graph yet")
        return self.graph

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def apply_streaming_update(self, update: GraphUpdate) -> None:
        """Apply one update immediately (the low-latency path)."""
        graph = self._require_graph()
        graph.ensure_vertex(update.src)
        graph.ensure_vertex(update.dst)
        phase = PHASE_INSERT if update.kind is UpdateKind.INSERT else PHASE_DELETE
        start = time.perf_counter()
        if update.kind is UpdateKind.INSERT:
            graph.add_edge(update.src, update.dst, update.bias)
            self._on_insert(update.src, update.dst, update.bias)
        else:
            graph.remove_edge(update.src, update.dst)
            self._on_delete(update.src, update.dst)
        self.breakdown.add(phase, time.perf_counter() - start)
        self.updates_applied += 1

    def apply_streaming(self, updates: Iterable[GraphUpdate]) -> None:
        """Apply a sequence of updates one at a time."""
        for update in updates:
            self.apply_streaming_update(update)

    def apply_batch(self, updates: Sequence[GraphUpdate]) -> None:
        """Ingest a whole batch of updates (the high-throughput path).

        The default implementation streams the batch; engines with a real
        batched path (Bingo) or rebuild-from-scratch semantics (the static
        baselines) override this.
        """
        self.apply_streaming(updates)

    def _apply_batch_to_graph(self, batch: UpdateBatch) -> list[int]:
        """Mutate the adopted graph with a whole columnar batch.

        Groups the batch by source vertex (one stable argsort) and replays
        each vertex's slice as bulk kind-runs, so the resulting adjacency —
        including neighbour-array order — is identical to applying the
        updates one edge at a time in timestamp order.  Returns the touched
        source vertices in first-appearance order.  Undirected graphs fall
        back to the scalar path (mirrored arcs interleave vertices).
        """
        graph = self._require_graph()
        if graph.undirected:
            touched: list[int] = []
            seen = set()
            for update in batch:
                graph.ensure_vertex(update.src)
                graph.ensure_vertex(update.dst)
                if update.kind is UpdateKind.INSERT:
                    graph.add_edge(update.src, update.dst, update.bias)
                else:
                    graph.remove_edge(update.src, update.dst)
                if update.src not in seen:
                    seen.add(update.src)
                    touched.append(update.src)
            return touched
        highest = batch.max_vertex()
        if highest >= 0:
            graph.ensure_vertices(highest)
        touched = []
        add_edge = graph.add_edge
        remove_edge = graph.remove_edge
        for group in batch.group_by_source(detect_duplicates=False):
            vertex = group.vertex
            dsts = group.dsts
            if len(dsts) == 1:
                # Single-update slices dominate realistic batches; the bulk
                # mutators' vectorized validation would only add overhead.
                if group.insert_mask[0]:
                    add_edge(vertex, int(dsts[0]), float(group.biases[0]))
                else:
                    remove_edge(vertex, int(dsts[0]))
            else:
                for is_insert, start, stop in group.kind_runs():
                    if stop - start == 1:
                        if is_insert:
                            add_edge(vertex, int(dsts[start]), float(group.biases[start]))
                        else:
                            remove_edge(vertex, int(dsts[start]))
                    elif is_insert:
                        graph.add_edges_bulk(
                            vertex,
                            dsts[start:stop],
                            group.biases[start:stop],
                        )
                    else:
                        graph.remove_edges_bulk(vertex, dsts[start:stop])
            touched.append(vertex)
        return touched

    # per-update hooks for subclasses (graph mutation already done)
    @abc.abstractmethod
    def _on_insert(self, src: int, dst: int, bias: float) -> None:
        """Update sampling state after an edge insertion."""

    @abc.abstractmethod
    def _on_delete(self, src: int, dst: int) -> None:
        """Update sampling state after an edge deletion."""

    # ------------------------------------------------------------------ #
    # sampling (NeighborSampler protocol)
    # ------------------------------------------------------------------ #
    def sample_neighbor(self, vertex: int) -> int | None:
        """Draw a biased out-neighbour of ``vertex`` (None for sinks)."""
        start = time.perf_counter()
        try:
            return self._sample(vertex)
        finally:
            self.breakdown.add(PHASE_SAMPLING, time.perf_counter() - start)
            self.samples_drawn += 1

    @abc.abstractmethod
    def _sample(self, vertex: int) -> int | None:
        """Engine-specific biased neighbour draw."""

    def sample_neighbors(
        self, vertex: int, count: int, rng: NumpySource = None
    ) -> np.ndarray:
        """Draw ``count`` biased out-neighbours of ``vertex`` as one batch.

        Returns an ``int64`` array of length ``count``; every entry is ``-1``
        when the vertex has no out-edges (the batched form of
        :meth:`sample_neighbor` returning ``None``).  Engines with
        ``supports_batch`` resolve the whole request in one vectorized
        kernel; the default implementation loops the scalar draw so every
        engine can serve walk-frontier queries.
        """
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        start = time.perf_counter()
        try:
            return self._sample_batch(vertex, count, ensure_np_rng(rng))
        finally:
            self.breakdown.add(PHASE_SAMPLING, time.perf_counter() - start)
            self.samples_drawn += count

    def _sample_batch(
        self, vertex: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Engine-specific batched draw (default: scalar fallback loop)."""
        out = np.empty(count, dtype=np.int64)
        for position in range(count):
            drawn = self._sample(vertex)
            out[position] = -1 if drawn is None else drawn
        return out

    def sample_frontier(
        self, vertices: Sequence[int], rng: NumpySource = None
    ) -> np.ndarray:
        """Draw one biased neighbour for every entry of ``vertices`` at once.

        ``vertices`` is a walk frontier: the current positions of N walkers,
        repeats expected and welcome.  Returns an ``int64`` array aligned
        with the input, ``-1`` where the vertex has no out-edges.  The
        default implementation partitions the frontier by vertex (one
        argsort) and serves each group with the engine's batched kernel;
        engines can override :meth:`_sample_frontier` with a fused kernel
        that resolves the whole frontier without per-vertex dispatch.
        """
        query = np.ascontiguousarray(vertices, dtype=np.int64)
        if query.size == 0:
            return np.empty(0, dtype=np.int64)
        start = time.perf_counter()
        try:
            return self._sample_frontier(query, ensure_np_rng(rng))
        finally:
            self.breakdown.add(PHASE_SAMPLING, time.perf_counter() - start)
            self.samples_drawn += int(query.size)

    def _sample_frontier(
        self, vertices: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Engine-specific frontier draw (default: group-by-vertex dispatch)."""
        draws = np.full(len(vertices), -1, dtype=np.int64)
        # Vertices outside the current snapshot — negative ids (the walk
        # matrix's retired-walker padding) or ids past the vertex range —
        # draw -1 so the walker retires instead of crashing the scalar
        # fallback or sampling some other vertex's view.
        valid = (vertices >= 0) & (vertices < self._require_graph().num_vertices)
        if not valid.all():
            positions = np.nonzero(valid)[0]
            if len(positions) == 0:
                return draws
            draws[positions] = self._sample_frontier(vertices[positions], rng)
            return draws
        # argsort-partition: members of group g sit at order[bounds[g]:bounds[g+1]].
        order = np.argsort(vertices, kind="stable")
        unique, counts = np.unique(vertices, return_counts=True)
        bounds = np.concatenate(([0], np.cumsum(counts)))
        for group, vertex in enumerate(unique):
            members = order[bounds[group] : bounds[group + 1]]
            share = int(counts[group])
            if self.supports_batch and share >= self.kernel_threshold:
                draws[members] = self._sample_batch(int(vertex), share, rng)
            else:
                for member in members:
                    drawn = self._sample(int(vertex))
                    draws[member] = -1 if drawn is None else drawn
        return draws

    def degree(self, vertex: int) -> int:
        """Out-degree of ``vertex`` in the current snapshot."""
        return self._require_graph().degree(vertex)

    def has_edge(self, src: int, dst: int) -> bool:
        """Whether ``src -> dst`` exists in the current snapshot."""
        graph = self._require_graph()
        if src >= graph.num_vertices or dst >= graph.num_vertices:
            return False
        return graph.has_edge(src, dst)

    def num_vertices(self) -> int:
        """Number of vertices in the current snapshot."""
        return self._require_graph().num_vertices

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def memory_report(self) -> MemoryReport:
        """Modelled memory footprint of graph plus sampling structures."""

    def memory_gigabytes(self) -> float:
        """Convenience: total modelled memory in GB."""
        return self.memory_report().total_gigabytes()

    def reset_breakdown(self) -> None:
        """Clear the accumulated time breakdown and counters."""
        self.breakdown = TimeBreakdown()
        self.samples_drawn = 0
        self.updates_applied = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        vertices = self.graph.num_vertices if self.graph is not None else 0
        return f"{type(self).__name__}(vertices={vertices})"
