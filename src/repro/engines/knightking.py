"""KnightKing-style baseline: per-vertex alias tables, rebuilt on change.

KnightKing (SOSP'19) is the CPU state of the art the paper compares against:
static biased sampling uses alias tables (O(1) sampling, O(d) construction)
and the dynamic component of second-order walks uses rejection on top.  It
has no dynamic-graph support, so the paper's evaluation "reload[s] or
reconstruct[s] the corresponding structure after each round of updates".

This engine reproduces those costs:

* streaming update → O(d) alias rebuild of the affected vertex;
* batched update → apply the edits to the graph, then rebuild the alias
  table of **every** vertex (the reload-from-scratch the paper performs for
  the baselines).
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

from repro.core.memory_model import MemoryReport
from repro.engines.base import PHASE_REBUILD, RandomWalkEngine
from repro.graph.update_stream import GraphUpdate, UpdateKind
from repro.sampling.alias import AliasTable
from repro.utils.rng import RandomSource, spawn_rng


class KnightKingEngine(RandomWalkEngine):
    """Alias-table engine with rebuild-on-update semantics."""

    name = "knightking"

    def __init__(self, *, rng: RandomSource = None, full_rebuild_on_batch: bool = True) -> None:
        super().__init__(rng=rng)
        #: When True (default) a batch triggers a whole-graph rebuild, the
        #: behaviour the paper uses for the static baselines.  Set to False to
        #: measure the hypothetical per-vertex-rebuild variant.
        self.full_rebuild_on_batch = full_rebuild_on_batch
        self._tables: Dict[int, AliasTable] = {}

    # ------------------------------------------------------------------ #
    def _build_state(self) -> None:
        graph = self._require_graph()
        self._tables = {}
        for vertex in range(graph.num_vertices):
            if graph.degree(vertex) == 0:
                continue
            self._tables[vertex] = self._build_vertex_table(vertex)

    def _build_vertex_table(self, vertex: int) -> AliasTable:
        graph = self._require_graph()
        table = AliasTable(rng=spawn_rng(self._rng, vertex))
        for edge in graph.out_edges(vertex):
            table.insert(edge.dst, edge.bias)
        table.rebuild()
        return table

    def _rebuild_vertex(self, vertex: int) -> None:
        graph = self._require_graph()
        start = time.perf_counter()
        if graph.degree(vertex) == 0:
            self._tables.pop(vertex, None)
        else:
            self._tables[vertex] = self._build_vertex_table(vertex)
        self.breakdown.add(PHASE_REBUILD, time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    def _on_insert(self, src: int, dst: int, bias: float) -> None:
        # The alias method has no incremental path: rebuild the vertex, O(d).
        self._rebuild_vertex(src)

    def _on_delete(self, src: int, dst: int) -> None:
        self._rebuild_vertex(src)

    def apply_batch(self, updates: Sequence[GraphUpdate]) -> None:
        graph = self._require_graph()
        touched = set()
        for update in updates:
            graph.ensure_vertex(update.src)
            graph.ensure_vertex(update.dst)
            if update.kind is UpdateKind.INSERT:
                graph.add_edge(update.src, update.dst, update.bias)
            else:
                graph.remove_edge(update.src, update.dst)
            touched.add(update.src)
        start = time.perf_counter()
        if self.full_rebuild_on_batch:
            self._build_state()
        else:
            for vertex in touched:
                if graph.degree(vertex) == 0:
                    self._tables.pop(vertex, None)
                else:
                    self._tables[vertex] = self._build_vertex_table(vertex)
        self.breakdown.add(PHASE_REBUILD, time.perf_counter() - start)
        self.updates_applied += len(updates)

    # ------------------------------------------------------------------ #
    def _sample(self, vertex: int) -> Optional[int]:
        table = self._tables.get(vertex)
        if table is None or len(table) == 0:
            return None
        return table.sample()

    # ------------------------------------------------------------------ #
    def memory_report(self) -> MemoryReport:
        report = MemoryReport()
        graph = self._require_graph()
        report.add("graph", graph.num_arcs * (4 + 8) + graph.num_vertices * 8)
        total = 0
        for table in self._tables.values():
            total += table.memory_bytes()
        report.add("alias_tables", total)
        return report
