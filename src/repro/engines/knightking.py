"""KnightKing-style baseline: per-vertex alias tables, rebuilt on change.

KnightKing (SOSP'19) is the CPU state of the art the paper compares against:
static biased sampling uses alias tables (O(1) sampling, O(d) construction)
and the dynamic component of second-order walks uses rejection on top.  It
has no dynamic-graph support, so the paper's evaluation "reload[s] or
reconstruct[s] the corresponding structure after each round of updates".

This engine reproduces those costs:

* streaming update → O(d) alias rebuild of the affected vertex;
* batched update → apply the edits to the graph, then rebuild the alias
  table of **every** vertex (the reload-from-scratch the paper performs for
  the baselines).
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from repro.core.memory_model import MemoryReport
from repro.engines.base import PHASE_REBUILD, RandomWalkEngine
from repro.engines.sliced_tables import (
    FrontierDelta,
    SlicedTableStore,
    adopt_store_state,
    apply_store_slices,
    export_store_slices,
    export_store_state,
    mark_frontier_dirty,
    warm_frontier_delta,
)
from repro.graph.update_batch import UpdateBatch
from repro.graph.update_stream import GraphUpdate, UpdateKind
from repro.sampling.alias import AliasTable
from repro.utils.rng import RandomSource, spawn_rng


class KnightKingEngine(RandomWalkEngine):
    """Alias-table engine with rebuild-on-update semantics."""

    name = "knightking"
    supports_batch = True

    def __init__(self, *, rng: RandomSource = None, full_rebuild_on_batch: bool = True) -> None:
        super().__init__(rng=rng)
        #: When True (default) a batch triggers a whole-graph rebuild, the
        #: behaviour the paper uses for the static baselines.  Set to False to
        #: measure the hypothetical per-vertex-rebuild variant.
        self.full_rebuild_on_batch = full_rebuild_on_batch
        self._tables: dict[int, AliasTable] = {}
        # Concatenated per-vertex alias arrays for the fused frontier kernel,
        # kept as sliced segments so an update batch only re-derives its
        # touched vertices (the dirty-set) instead of the whole graph.
        self._frontier_cache: dict[str, np.ndarray] | None = None
        self._frontier_dirty: set[int] = set()
        self._frontier_store = SlicedTableStore(
            {"ids": np.int64, "prob": np.float64, "alias": np.int64}
        )
        #: Cold/compaction full concatenations performed (delta accounting).
        self.frontier_full_builds = 0

    # ------------------------------------------------------------------ #
    def _build_state(self) -> None:
        self._rebuild_samplers()
        self._frontier_cache = None
        self._frontier_dirty.clear()

    def _rebuild_samplers(self) -> None:
        """Recreate every per-vertex alias table from the adjacency.

        Table *content* is a deterministic function of the adjacency (the
        per-table rng only drives scalar draws), so a whole-graph sampler
        reload leaves untouched vertices' frontier slices valid — the
        batch paths call this and mark only their touched vertices dirty.
        """
        graph = self._require_graph()
        self._tables = {}
        for vertex in self._build_vertex_ids():
            if graph.degree(vertex) == 0:
                continue
            self._tables[vertex] = self._build_vertex_table(vertex)

    def _build_vertex_table(self, vertex: int) -> AliasTable:
        graph = self._require_graph()
        table = AliasTable(rng=spawn_rng(self._rng, vertex))
        # Bulk-load straight from the zero-copy adjacency views.
        table.insert_many(graph.neighbor_array(vertex), graph.bias_array(vertex))
        table.rebuild()
        return table

    def _rebuild_vertex(self, vertex: int) -> None:
        graph = self._require_graph()
        mark_frontier_dirty(self, (vertex,))
        start = time.perf_counter()
        if graph.degree(vertex) == 0:
            self._tables.pop(vertex, None)
        else:
            self._tables[vertex] = self._build_vertex_table(vertex)
        self.breakdown.add(PHASE_REBUILD, time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    def _on_insert(self, src: int, dst: int, bias: float) -> None:
        # The alias method has no incremental path: rebuild the vertex, O(d).
        self._rebuild_vertex(src)

    def _on_delete(self, src: int, dst: int) -> None:
        self._rebuild_vertex(src)

    def apply_batch(self, updates: Sequence[GraphUpdate]) -> None:
        """Apply the edits columnar (bulk per-vertex kind-runs), then rebuild."""
        graph = self._require_graph()
        batch = UpdateBatch.coerce(updates)
        touched = self._apply_batch_to_graph(batch)
        mark_frontier_dirty(self, touched)
        start = time.perf_counter()
        if self.full_rebuild_on_batch:
            self._rebuild_samplers()
        else:
            # Sorted order keeps the per-vertex RNG-stream assignment (one
            # spawn_rng per rebuild) identical across ingestion paths.
            for vertex in sorted(touched):
                if graph.degree(vertex) == 0:
                    self._tables.pop(vertex, None)
                else:
                    self._tables[vertex] = self._build_vertex_table(vertex)
        self.breakdown.add(PHASE_REBUILD, time.perf_counter() - start)
        self.updates_applied += len(batch)

    def apply_batch_scalar(self, updates: Sequence[GraphUpdate]) -> None:
        """The legacy per-edge batch path (reference for equivalence tests)."""
        graph = self._require_graph()
        touched = set()
        for update in updates:
            graph.ensure_vertex(update.src)
            graph.ensure_vertex(update.dst)
            if update.kind is UpdateKind.INSERT:
                graph.add_edge(update.src, update.dst, update.bias)
            else:
                graph.remove_edge(update.src, update.dst)
            touched.add(update.src)
        mark_frontier_dirty(self, touched)
        start = time.perf_counter()
        if self.full_rebuild_on_batch:
            self._rebuild_samplers()
        else:
            for vertex in sorted(touched):
                if graph.degree(vertex) == 0:
                    self._tables.pop(vertex, None)
                else:
                    self._tables[vertex] = self._build_vertex_table(vertex)
        self.breakdown.add(PHASE_REBUILD, time.perf_counter() - start)
        self.updates_applied += len(updates)

    # ------------------------------------------------------------------ #
    def _sample(self, vertex: int) -> int | None:
        table = self._tables.get(vertex)
        if table is None or len(table) == 0:
            return None
        return table.sample()

    def _sample_batch(
        self, vertex: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        table = self._tables.get(vertex)
        if table is None or len(table) == 0:
            return np.full(count, -1, dtype=np.int64)
        return table.sample_batch(count, rng)

    def _vertex_slice_parts(self, table: AliasTable) -> dict[str, np.ndarray]:
        ids, prob, alias = table.numpy_tables()
        return {"ids": ids, "prob": prob, "alias": alias}

    def _frontier_tables(self) -> dict[str, np.ndarray]:
        """Per-vertex alias slices concatenated into one global table.

        A walker on vertex ``v`` draws a bucket inside the slice
        ``[seg_offset[v], seg_offset[v] + seg_length[v])`` and resolves the
        alias toss against the global prob/alias arrays, so the whole
        frontier advances with a fixed number of NumPy operations.  Built
        cold once; afterwards an update batch marks its touched vertices in
        ``_frontier_dirty`` and this repairs exactly those slices in the
        sliced store (compacting when the accumulated waste outweighs the
        live payload), so a flip costs O(touched), not O(V).
        """
        if self._frontier_cache is not None and not self._frontier_dirty:
            return self._frontier_cache
        graph = self._require_graph()
        store = self._frontier_store
        if self._frontier_cache is None:
            self.frontier_full_builds += 1
            self._frontier_dirty.clear()
            store.reset(graph.num_vertices)
            for vertex, table in self._tables.items():
                if len(table) == 0:
                    continue
                store.set_slice(vertex, self._vertex_slice_parts(table))
        else:
            store.ensure_vertices(graph.num_vertices)
            for vertex in sorted(self._frontier_dirty):
                table = self._tables.get(vertex)
                if table is None or len(table) == 0:
                    store.clear_slice(vertex)
                else:
                    store.set_slice(vertex, self._vertex_slice_parts(table))
            self._frontier_dirty.clear()
            if store.needs_compaction():
                store.compact()
        # Re-derive the view dict every repair: capacity growth and
        # compaction replace the backing arrays.
        self._refresh_frontier_views()
        return self._frontier_cache

    def _refresh_frontier_views(self) -> None:
        store = self._frontier_store
        self._frontier_cache = {
            "seg_offset": store.seg_offset,
            "seg_length": store.seg_length,
            "ids": store.column("ids"),
            "prob": store.column("prob"),
            "alias": store.column("alias"),
        }

    def warm_frontier_tables(self) -> FrontierDelta:
        """Repair the fused tables now; reports the slices it re-derived."""
        return warm_frontier_delta(self)

    # ------------------------------------------------------------------ #
    # cross-process frontier state (the shard-router transport)
    # ------------------------------------------------------------------ #
    def export_frontier_state(self) -> dict[str, np.ndarray]:
        """The alias store's full state as plain arrays (shard boot payload)."""
        self._frontier_tables()
        state = {
            "num_vertices": np.array(
                [self._require_graph().num_vertices], dtype=np.int64
            )
        }
        state.update(export_store_state(self._frontier_store))
        return state

    def adopt_frontier_state(self, state: dict[str, np.ndarray]) -> None:
        """Replace the fused tables with a writer's exported snapshot."""
        adopt_store_state(self._frontier_store, state)
        self._frontier_dirty.clear()
        self._refresh_frontier_views()

    def export_frontier_patch(self, vertices) -> dict[str, np.ndarray]:
        """The touched vertices' alias slices (per-vertex, self-contained)."""
        self._frontier_tables()
        payload = export_store_slices(self._frontier_store, vertices)
        payload["num_vertices"] = np.array(
            [self._require_graph().num_vertices], dtype=np.int64
        )
        return payload

    def apply_frontier_patch(self, payload: dict[str, np.ndarray]) -> None:
        """Apply a writer's patch; untouched slices stay untouched."""
        for vertex in payload["vertices"]:
            self._tables.pop(int(vertex), None)
        apply_store_slices(
            self._frontier_store,
            payload,
            num_vertices=int(payload["num_vertices"][0]),
        )
        self._frontier_dirty.clear()
        self._refresh_frontier_views()

    def _sample_frontier(
        self, vertices: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        tables = self._frontier_tables()
        out = np.full(len(vertices), -1, dtype=np.int64)
        limit = len(tables["seg_length"])
        if limit == 0:
            return out
        # Out-of-range vertices — negative ids (retired-walker padding) or
        # ids past the table range — draw -1, matching the scalar path.
        in_range = (vertices >= 0) & (vertices < limit)
        safe = np.clip(vertices, 0, limit - 1)
        lengths = np.where(in_range, tables["seg_length"][safe], 0)
        live = np.nonzero(lengths > 0)[0]
        if len(live) == 0:
            return out
        query = vertices[live]
        offsets = tables["seg_offset"][query]
        degrees = lengths[live]
        uniforms = rng.random(2 * len(live))
        buckets = offsets + (uniforms[: len(live)] * degrees).astype(np.int64)
        chosen = np.where(
            uniforms[len(live) :] < tables["prob"][buckets],
            buckets,
            offsets + tables["alias"][buckets],
        )
        out[live] = tables["ids"][chosen]
        return out

    # ------------------------------------------------------------------ #
    def memory_report(self) -> MemoryReport:
        report = MemoryReport()
        graph = self._require_graph()
        report.add("graph", graph.num_arcs * (4 + 8) + graph.num_vertices * 8)
        total = 0
        for table in self._tables.values():
            total += table.memory_bytes()
        report.add("alias_tables", total)
        return report
