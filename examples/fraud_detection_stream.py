#!/usr/bin/env python3
"""Streaming fraud detection on a transaction graph (the paper's motivating use case).

Section 1 motivates Bingo with fraud detection on e-commerce platforms: the
transaction graph changes constantly, and "malicious users could commit a
series of illicit activities if the graph updates are not immediately
integrated".  This example models that scenario:

* vertices are accounts, edges are transactions weighted by amount,
* a burst of suspicious transactions arrives as *streaming* updates
  (low-latency path: every edge is integrated immediately, O(K) per event),
* after each event we re-score accounts with Personalized PageRank random
  walks from the merchant under attack and watch the fraud ring's score rise.

Run it with::

    python examples/fraud_detection_stream.py
"""

from __future__ import annotations

import random

from repro import BingoEngine, GraphUpdate, UpdateKind, power_law_graph
from repro.walks.ppr import PPRConfig, ppr_scores


def build_transaction_graph(num_accounts: int, seed: int):
    """A skewed transaction graph: most accounts trade with a few hubs."""
    graph = power_law_graph(num_accounts, 3, rng=seed)
    rng = random.Random(seed)
    # Re-weight edges with transaction amounts (heavy-tailed, in dollars).
    for edge in list(graph.edges()):
        amount = round(rng.paretovariate(1.5) * 10, 2)
        graph.update_bias(edge.src, edge.dst, max(1.0, amount))
    return graph


def main() -> None:
    num_accounts = 1_500
    graph = build_transaction_graph(num_accounts, seed=7)
    merchant = 0          # a popular merchant account (hub of the graph)
    ring = [num_accounts + i for i in range(5)]  # five new mule accounts

    engine = BingoEngine(rng=11)
    engine.build(graph)
    print(f"transaction graph: {engine.graph.num_edges} edges, "
          f"{engine.graph.num_vertices} accounts")

    ppr_config = PPRConfig(termination_probability=0.15, max_steps=60)

    def ring_score() -> float:
        scores = ppr_scores(engine, merchant, num_walks=400, config=ppr_config, rng=13)
        return sum(scores.get(account, 0.0) for account in ring)

    print(f"fraud-ring PPR mass before the attack: {ring_score():.4f}")

    # The fraud ring wires money in a loop through the merchant: a burst of
    # streaming edge insertions that must be reflected in the walks at once.
    rng = random.Random(17)
    events = []
    for step in range(40):
        mule_a, mule_b = rng.sample(ring, 2)
        amount = round(rng.uniform(200, 900), 2)
        if step % 4 == 0:
            events.append(GraphUpdate(UpdateKind.INSERT, merchant, mule_a, amount, step))
        events.append(GraphUpdate(UpdateKind.INSERT, mule_a, mule_b, amount, step))

    applied = 0
    for event in events:
        if engine.graph.num_vertices > max(event.src, event.dst) and \
                engine.graph.has_edge(event.src, event.dst):
            # Repeated transfer on an existing edge: bump the edge weight.
            new_bias = engine.graph.edge_bias(event.src, event.dst) + event.bias
            engine.apply_streaming_update(
                GraphUpdate(UpdateKind.DELETE, event.src, event.dst, 1.0, event.timestamp)
            )
            engine.apply_streaming_update(
                GraphUpdate(UpdateKind.INSERT, event.src, event.dst, new_bias, event.timestamp)
            )
        else:
            engine.apply_streaming_update(event)
        applied += 1
        if applied % 10 == 0:
            print(f"after {applied:3d} streaming events: "
                  f"fraud-ring PPR mass = {ring_score():.4f}")

    print(f"final fraud-ring PPR mass: {ring_score():.4f}")
    print("update latency breakdown (s):",
          {k: round(v, 4) for k, v in engine.breakdown.as_dict().items()
           if k in ("insert", "delete", "rebuild")})


if __name__ == "__main__":
    main()
