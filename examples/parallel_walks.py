"""Quickstart for shard-parallel walk execution.

Partitions a power-law graph degree-balanced, spins up a persistent worker
pool over shared-memory CSR columns, runs DeepWalk / PPR through it, shows
the 1-worker run is bitwise identical to the serial frontier, demonstrates
`refresh` after graph updates, and prints the per-shard load / transfer
statistics the multi-device model cares about.

Run with:

    PYTHONPATH=src python examples/parallel_walks.py
"""

from __future__ import annotations

import numpy as np

from repro.engines.bingo import BingoEngine
from repro.graph.generators import power_law_graph
from repro.graph.partition import partition_graph
from repro.graph.update_stream import GraphUpdate, UpdateKind
from repro.walks.frontier import run_frontier_deepwalk
from repro.walks.parallel import ParallelWalkRunner


def main() -> None:
    graph = power_law_graph(2_000, 3, rng=7)
    starts = [v for v in range(graph.num_vertices) if graph.degree(v) > 0]

    # --- the partition itself ----------------------------------------------
    partition = partition_graph(graph, 4, strategy="degree_balanced")
    print(
        f"4 shards: balance={partition.balance(graph):.3f}, "
        f"edge_cut={partition.edge_cut(graph)} of {graph.num_arcs} arcs"
    )

    # --- one worker reproduces the serial frontier bitwise ------------------
    engine = BingoEngine(rng=11)
    engine.build(graph.copy())
    serial = run_frontier_deepwalk(engine, starts, 10, rng=42)
    with ParallelWalkRunner("bingo", graph, 1, engine_seed=11) as runner:
        parallel = runner.run_deepwalk(starts, 10, rng=42)
    assert np.array_equal(serial.matrix, parallel.matrix)
    print(f"1-worker run bitwise-identical to serial: {parallel.total_steps} steps")

    # --- four shards, walker hand-off between them --------------------------
    with ParallelWalkRunner("bingo", graph, 4, engine_seed=11) as runner:
        walks = runner.run_deepwalk(starts, 10, rng=43)
        stats = runner.last_stats
        print(
            f"4 workers: {walks.total_steps} steps, "
            f"busy per shard = {[round(b * 1e3, 1) for b in stats.busy_seconds]} ms, "
            f"critical path = {stats.critical_path_seconds * 1e3:.1f} ms"
        )
        print(
            f"modelled throughput {stats.steps_per_second_model():,.0f} steps/s, "
            f"transfer rate {runner.tracker.stats.transfer_rate():.1%}"
        )

        # PPR through the same pool (termination coin flipped shard-side).
        ppr = runner.run_ppr(
            starts, termination_probability=0.1, max_steps=40, rng=44
        )
        print(f"PPR: {ppr.num_walks} walks, mean length {ppr.lengths().mean():.1f}")

        # --- update the graph, refresh the pool ------------------------------
        victim = max(range(graph.num_vertices), key=graph.degree)
        engine2 = BingoEngine(rng=11)
        engine2.build(graph)
        for dst in list(graph.neighbors(victim))[:5]:
            engine2.apply_streaming_update(GraphUpdate(UpdateKind.DELETE, victim, dst))
        runner.refresh(graph)
        after = runner.run_deepwalk(starts, 10, rng=45)
        print(f"after deletes + refresh: {after.total_steps} steps, still valid")


if __name__ == "__main__":
    main()
