"""Quickstart for the streaming serve layer.

Builds a power-law graph, stands up a `GraphService`, and walks through
the serving workflow: concurrent batch ingestion with epoch publication,
fused walk queries against snapshot-isolated state, per-query latency,
and the sync mode that is bitwise-identical to the serial frontier.

Run with:

    PYTHONPATH=src python examples/streaming_service.py
"""

from __future__ import annotations

import numpy as np

from repro.engines.registry import create_engine
from repro.graph.generators import power_law_graph
from repro.graph.update_stream import UpdateWorkload, generate_update_stream
from repro.serve import GraphService, WalkQuery
from repro.walks.frontier import run_frontier_deepwalk


def main() -> None:
    graph = power_law_graph(2_000, 3, rng=7)
    stream = generate_update_stream(
        graph, batch_size=500, num_batches=3, workload=UpdateWorkload.MIXED, rng=7
    )
    starts = [v for v in range(stream.initial_graph.num_vertices)
              if stream.initial_graph.degree(v) > 0][:256]

    # --- concurrent serving ------------------------------------------------
    # The writer thread ingests batches and publishes epochs while the
    # dispatcher fuses query waves into single batched frontiers.
    service = GraphService("bingo", stream.initial_graph, rng=11, fuse_limit=8)
    tickets = []
    for batch in stream.batches:
        service.ingest(batch)  # non-blocking
        tickets.extend(
            service.submit_many(
                [WalkQuery("deepwalk", starts, walk_length=10) for _ in range(4)]
            )
        )
    service.flush()  # all batches published
    for ticket in tickets[:4]:
        result = ticket.result()
        print(
            f"epoch {result.epoch}: {result.walks.total_steps} steps, "
            f"fused with {result.fused_with - 1} other queries, "
            f"latency {result.latency_seconds * 1e3:.1f} ms"
        )
    stats = service.stats
    print(
        f"served {stats.queries_served} queries over "
        f"{stats.epochs_published} epochs; update busy "
        f"{stats.update_busy_seconds:.3f}s vs query busy "
        f"{stats.query_busy_seconds:.3f}s (overlap model: "
        f"{max(stats.update_busy_seconds, stats.query_busy_seconds):.3f}s)"
    )
    service.close()

    # --- sync mode: bitwise-identical to the serial frontier ---------------
    service = GraphService("bingo", stream.initial_graph, rng=13, sync=True)
    reference = create_engine("bingo", rng=13)
    reference.build(stream.initial_graph.copy())
    for batch in stream.batches:
        service.ingest(batch)
        reference.apply_batch(batch)
    served = service.query("deepwalk", starts, 10, rng=42)
    expected = run_frontier_deepwalk(reference, starts, 10, rng=42)
    assert np.array_equal(served.walks.matrix, expected.matrix)
    print("sync mode matches the serial frontier bitwise:", served.walks.matrix.shape)
    service.close()


if __name__ == "__main__":
    main()
