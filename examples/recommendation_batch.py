#!/usr/bin/env python3
"""Daily batched updates for friend/product recommendation with node2vec.

The paper's second design principle is high-throughput batched ingestion:
"certain graph systems, such as product recommendations, could require
updating the graph daily with a large volume of updates."  This example plays
out that scenario:

* a user-item interaction graph accumulates a day's worth of new interactions
  (insertions) and retention-policy expiries (deletions),
* the whole day is ingested as one *batch* (request reordering, net
  insert/delete per vertex, one rebuild per touched vertex),
* node2vec walks (p = 0.5, q = 2, the paper's defaults) are regenerated so a
  downstream SkipGram/embedding model can be refreshed,
* simple co-visit counts from the walks give a "users also explored" list.

Run it with::

    python examples/recommendation_batch.py
"""

from __future__ import annotations

import random
from collections import Counter

from repro import BingoEngine, Node2VecConfig, power_law_graph, run_node2vec
from repro.graph.update_stream import GraphUpdate, UpdateKind


def simulate_one_day(graph, *, day: int, num_events: int, rng: random.Random):
    """A day of interactions: mostly new edges, a few expiries."""
    updates = []
    timestamp = day * 1_000_000
    live_edges = list(graph.edges())
    for _ in range(num_events):
        timestamp += 1
        if rng.random() < 0.8 or not live_edges:
            user = rng.randrange(graph.num_vertices)
            item = rng.randrange(graph.num_vertices)
            if user == item or graph.has_edge(user, item):
                continue
            weight = float(rng.randint(1, 16))
            updates.append(GraphUpdate(UpdateKind.INSERT, user, item, weight, timestamp))
            graph.add_edge(user, item, weight)  # track live state for generation
        else:
            edge = live_edges.pop(rng.randrange(len(live_edges)))
            if graph.has_edge(edge.src, edge.dst):
                updates.append(
                    GraphUpdate(UpdateKind.DELETE, edge.src, edge.dst, edge.bias, timestamp)
                )
                graph.remove_edge(edge.src, edge.dst)
    return updates


def recommend(walks, source: int, top_k: int = 5):
    """Vertices most often co-visited with ``source`` across walks."""
    covisits: Counter = Counter()
    for path in walks.paths:
        if source in path:
            covisits.update(v for v in path if v != source)
    return covisits.most_common(top_k)


def main() -> None:
    rng = random.Random(2025)
    interaction_graph = power_law_graph(1_200, 4, rng=1)

    # The engine owns its own copy; the generator graph tracks "reality".
    engine = BingoEngine(rng=2)
    engine.build(interaction_graph.copy())
    print(f"day 0: {engine.graph.num_edges} interactions")

    config = Node2VecConfig(p=0.5, q=2.0, walk_length=15)
    focus_user = 3

    for day in range(1, 4):
        daily_updates = simulate_one_day(
            interaction_graph, day=day, num_events=800, rng=rng
        )
        # engine.batch_stats accumulates across batches; diff it per day.
        before = (engine.batch_stats.insertions, engine.batch_stats.deletions,
                  engine.batch_stats.cancelled_pairs, engine.batch_stats.touched_vertices)
        engine.apply_batch(daily_updates)
        stats = engine.batch_stats
        inserts, deletes, cancelled, touched = (
            stats.insertions - before[0],
            stats.deletions - before[1],
            stats.cancelled_pairs - before[2],
            stats.touched_vertices - before[3],
        )
        print(
            f"day {day}: ingested {len(daily_updates)} events in one batch "
            f"({inserts} net inserts, {deletes} net deletes, "
            f"{cancelled} cancelled pairs, {touched} vertices touched)"
        )

        walks = run_node2vec(engine, config, starts=list(range(200)), rng=day)
        suggestions = recommend(walks, focus_user)
        print(f"day {day}: recommendations for user {focus_user}: {suggestions}")

    print(
        "modelled sampling-state memory: "
        f"{engine.memory_report().total_bytes() / 2**20:.2f} MB, "
        f"group mix {engine.group_kind_ratios()}"
    )


if __name__ == "__main__":
    main()
