"""Quickstart for the batched walk-frontier engine.

Builds a small power-law graph, runs DeepWalk both ways (scalar loop vs
batched frontier), shows they agree, then demonstrates the dense walk
matrix, a PPR frontier, and the update-then-walk loop.

Run with:

    PYTHONPATH=src python examples/frontier_quickstart.py
"""

from __future__ import annotations

import time

from repro.engines.bingo import BingoEngine
from repro.graph.generators import power_law_graph
from repro.graph.update_stream import GraphUpdate, UpdateKind
from repro.walks.deepwalk import DeepWalkConfig, run_deepwalk
from repro.walks.frontier import run_frontier_deepwalk, run_frontier_ppr


def main() -> None:
    graph = power_law_graph(2_000, 3, rng=7)
    engine = BingoEngine(rng=11)
    engine.build(graph)
    starts = [v for v in range(graph.num_vertices) if graph.degree(v) > 0]
    config = DeepWalkConfig(walk_length=10)

    # --- the one-liner: run_deepwalk(..., frontier=True) -------------------
    result = run_deepwalk(engine, config, starts=starts, frontier=True, rng=1)
    print(f"frontier DeepWalk: {result.num_walks} walks, {result.total_steps} steps")

    # --- the dense matrix API ----------------------------------------------
    walks = run_frontier_deepwalk(engine, starts, config.walk_length, rng=2)
    print(f"walk matrix shape: {walks.matrix.shape} (-1 padded)")
    print(f"first walk: {walks.paths()[0]}")

    # --- scalar vs batched wall time (tables are warm after the runs above) -
    tick = time.perf_counter()
    scalar = run_deepwalk(engine, config, starts=starts)
    scalar_seconds = time.perf_counter() - tick
    tick = time.perf_counter()
    batched = run_deepwalk(engine, config, starts=starts, frontier=True, rng=3)
    frontier_seconds = time.perf_counter() - tick
    print(
        f"scalar {scalar_seconds * 1e3:.0f}ms vs frontier {frontier_seconds * 1e3:.0f}ms "
        f"({scalar_seconds / frontier_seconds:.1f}x, {batched.total_steps} steps each)"
    )
    assert scalar.total_steps == batched.total_steps

    # --- PPR as a terminating frontier -------------------------------------
    ppr = run_frontier_ppr(
        engine, starts, termination_probability=1 / 20, max_steps=80, rng=4
    )
    print(f"PPR frontier: mean walk length {float(ppr.lengths().mean()):.1f}")

    # --- dynamic updates invalidate the fused tables automatically ----------
    batch = [
        GraphUpdate(UpdateKind.DELETE, edge.src, edge.dst)
        for edge in list(engine.graph.edges())[:50]
    ]
    engine.apply_batch(batch)
    after = run_frontier_deepwalk(engine, starts, config.walk_length, rng=5)
    print(f"after update batch: {after.total_steps} steps, still consistent")


if __name__ == "__main__":
    main()
