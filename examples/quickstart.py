#!/usr/bin/env python3
"""Quickstart: build a dynamic graph, run Bingo, and keep walking while it changes.

This example walks through the library's core loop in a few dozen lines:

1. generate a skewed synthetic graph with degree-derived biases,
2. build the Bingo engine (radix-factorized per-vertex samplers),
3. run biased DeepWalk on the initial snapshot,
4. ingest a batch of edge insertions/deletions,
5. walk again on the updated snapshot — without ever rebuilding the sampling
   space from scratch.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    BingoEngine,
    DeepWalkConfig,
    generate_update_stream,
    power_law_graph,
    run_deepwalk,
)


def main() -> None:
    # 1. A synthetic power-law graph: 2,000 vertices, ~3 out-edges each,
    #    biases equal to the destination's degree (the paper's default).
    graph = power_law_graph(2_000, 3, rng=42)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges, "
          f"max degree {graph.max_degree()}")

    # 2. Carve out an update stream the way the paper's evaluation does:
    #    the initial snapshot plus batches of mixed insertions/deletions.
    stream = generate_update_stream(
        graph, batch_size=500, num_batches=4, workload="mixed", rng=43
    )

    # 3. Build Bingo on the initial snapshot.
    engine = BingoEngine(rng=44)
    engine.build(stream.initial_graph.copy())
    print(f"bingo: lam={engine.lam}, "
          f"modelled memory {engine.memory_report().total_bytes() / 2**20:.2f} MB")

    # 4. Walk on the initial snapshot.
    config = DeepWalkConfig(walk_length=20)
    walks = run_deepwalk(engine, config, starts=list(range(100)))
    print(f"round 0: {walks.num_walks} walks, average length "
          f"{walks.average_length():.1f}")
    top_vertex, visits = walks.visit_counter().top(1)[0]
    print(f"round 0: most visited vertex {top_vertex} ({visits} visits)")

    # 5. Interleave update ingestion and walking, exactly like the paper's
    #    evaluation workflow.  Each batch is ingested with the O(K)-per-edge
    #    batched path and a single rebuild per touched vertex.
    for round_index, batch in enumerate(stream.batches, start=1):
        engine.apply_batch(batch)
        walks = run_deepwalk(engine, config, starts=list(range(100)))
        print(
            f"round {round_index}: applied {len(batch)} updates "
            f"({engine.graph.num_edges} edges live), "
            f"{walks.total_steps} walk steps"
        )

    breakdown = engine.breakdown.as_dict()
    print("time breakdown (s):",
          {phase: round(seconds, 4) for phase, seconds in breakdown.items()})


if __name__ == "__main__":
    main()
