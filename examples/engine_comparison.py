#!/usr/bin/env python3
"""Reproduce one cell of Table 3: Bingo vs the baselines on a dynamic workload.

This example runs the paper's evaluation workflow (Section 6.1) — rounds of
batched updates interleaved with biased DeepWalk — on the LiveJournal
stand-in for all four engines, then prints a Table 3-style summary plus the
speedup of Bingo over each baseline.  It is the scripted form of::

    bingo-repro compare --dataset LJ --application deepwalk --workload mixed

Run it with::

    python examples/engine_comparison.py
"""

from __future__ import annotations

from repro.bench.harness import EvaluationSettings, compare_engines
from repro.bench.reporting import format_speedup_table, summarize_results


def main() -> None:
    settings = EvaluationSettings(
        batch_size=250,     # paper: 100,000
        num_batches=3,      # paper: 10
        walk_length=10,     # paper: 80
        num_walkers=48,     # paper: one walker per vertex
    )
    results = compare_engines(
        ("bingo", "knightking", "gsampler", "flowwalker"),
        dataset="LJ",
        application="deepwalk",
        workload="mixed",
        settings=settings,
        seed=2025,
    )

    print(summarize_results(results))
    print()
    print(format_speedup_table(results, reference_engine="bingo"))
    print()

    bingo = next(r for r in results if r.engine == "bingo")
    print(
        f"bingo ingestion rate: {bingo.updates_per_second():,.0f} updates/s "
        f"(host wall clock, {bingo.total_updates} updates)"
    )
    for result in results:
        phases = {k: round(v, 4) for k, v in result.phase_breakdown.items()}
        print(f"{result.engine:>11}: phase breakdown (s) {phases}")


if __name__ == "__main__":
    main()
