"""Quickstart for the multi-tenant HTTP serving front-end.

Stands up a `GraphService` with two tenant lanes behind the event-loop
HTTP front-end (one thread, every keep-alive connection), then plays both
tenants from plain `urllib`: a flood tenant dumps a burst of queries
while a light tenant runs a closed loop — the deficit-round-robin fuser
keeps the light tenant's latency at the wave time instead of the flood's
queue depth.  Also demonstrates `/ingest` with back-buffer warming, the
`/stats` tenant breakdown, and the zero-copy binary walks format via
`ServiceClient(..., binary=True)`.

Run with:

    PYTHONPATH=src python examples/http_service.py
"""

from __future__ import annotations

import json
import threading
import urllib.request

from repro.graph.generators import power_law_graph
from repro.graph.update_stream import UpdateWorkload, generate_update_stream
from repro.serve import (
    GraphService,
    ServiceClient,
    TenantQuota,
    serve_event_loop,
)


def call(url: str, path: str, payload=None, tenant: str | None = None):
    headers = {"Content-Type": "application/json"}
    if tenant is not None:
        headers["X-Tenant"] = tenant
    request = urllib.request.Request(
        url + path,
        data=json.dumps(payload).encode() if payload is not None else None,
        headers=headers,
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def main() -> None:
    graph = power_law_graph(2_000, 3, rng=7)
    stream = generate_update_stream(
        graph, batch_size=400, num_batches=2, workload=UpdateWorkload.MIXED, rng=7
    )
    starts = [v for v in range(stream.initial_graph.num_vertices)
              if stream.initial_graph.degree(v) > 0]

    # With tenants configured the default admission lane *rejects* when
    # full (429 + Retry-After) — exactly what the event loop requires: a
    # blocking lane would park the loop's only thread.
    service = GraphService(
        "bingo",
        stream.initial_graph,
        rng=11,
        fuse_limit=4,
        warm_on_publish=True,  # pre-build fused tables before each epoch flip
        tenants={
            "flood": TenantQuota(max_pending=256, weight=1.0),
            "light": TenantQuota(max_pending=8, weight=1.0),
        },
    )
    server, _thread = serve_event_loop(service)
    url = server.url
    print(f"serving on {url} (event-loop front-end, one thread)")
    print("healthz:", call(url, "/healthz"))

    # --- two tenants contend for the fused waves ---------------------------
    def flood() -> None:
        for _wave in range(16):
            call(url, "/query", {
                "application": "deepwalk",
                "starts": starts[:64],
                "walk_length": 10,
            }, tenant="flood")

    flood_threads = [
        threading.Thread(target=flood, name=f"flood-{index}")
        for index in range(4)
    ]
    for thread in flood_threads:
        thread.start()

    light_latencies = []
    for _ in range(10):
        result = call(url, "/query", {
            "application": "deepwalk",
            "starts": starts[:128],
            "walk_length": 10,
        }, tenant="light")
        light_latencies.append(result["latency_seconds"])
    for thread in flood_threads:
        thread.join()
    print(f"light tenant under flood: "
          f"max latency {max(light_latencies) * 1e3:.1f} ms over "
          f"{len(light_latencies)} closed-loop queries")

    # --- ingestion publishes a new epoch (warmed before the flip) ----------
    updates = [
        {"src": update.src, "dst": update.dst,
         "kind": str(update.kind), "bias": update.bias}
        for update in stream.batches[0]
    ]
    print("ingest:", call(url, "/ingest", {"updates": updates, "flush": True}))
    probe = call(url, "/query", {
        "application": "ppr",
        "starts": starts[:32],
        "walk_length": 10,
        "params": {"termination_probability": 0.15},
    })
    print(f"post-flip probe: epoch {probe['epoch']}, "
          f"{probe['latency_seconds'] * 1e3:.1f} ms (served warm)")

    # --- the binary wire format via the retrying client --------------------
    # `Accept: application/x-walks-bin` returns the int64 walk matrix as
    # a fixed 64-byte header + the raw buffer; the client decodes it with
    # np.frombuffer — no per-cell JSON on either side of the wire.
    with ServiceClient(url) as client:
        decoded = client.query(
            "deepwalk", starts[:256], 10, binary=True, tenant="light"
        )
        print(f"binary query: matrix {decoded.matrix.shape} "
              f"({decoded.matrix.nbytes} payload bytes, zero-copy), "
              f"epoch {decoded.epoch}, fused_with {decoded.fused_with}")
        print(f"client reused 1 keep-alive connection: "
              f"connections_opened={client.connections_opened}")

    # --- per-tenant accounting --------------------------------------------
    stats = call(url, "/stats")
    for name, row in sorted(stats["tenants"].items()):
        print(f"tenant {name:>6}: served {row['served']:>3}, "
              f"p99 {row['latency_p99_seconds'] * 1e3:.1f} ms")
    print(f"epochs published {stats['epochs_published']}, "
          f"warmed {stats['epochs_warmed']}")

    server.shutdown()
    service.close()


if __name__ == "__main__":
    main()
