#!/usr/bin/env python3
"""Schema gate for the committed BENCH_PR*.json perf-trajectory artifacts.

Each PR that lands a measured win commits its numbers (BENCH_PR2: columnar
ingest, BENCH_PR3: shard-parallel walks, BENCH_PR4: streaming serve,
BENCH_PR5: multi-tenant fairness + back-buffer warming, BENCH_PR6:
epoch-delta publication flatness, BENCH_PR7: chaos suite resilience,
BENCH_PR8: event-loop connection scaling + binary wire format,
BENCH_PR9: sharded multi-process serve scale-out).  CI
runs this script so a refactor cannot silently drop an engine, rename a
field, or regress the streaming-serve headline below its acceptance bar —
the JSON in the repo must keep telling the same story the CHANGES.md entry
claims.

Usage::

    python scripts/check_bench.py [--dir REPO_ROOT]

Exits non-zero listing every violation found.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict, List

#: Every engine the Table 3 comparison covers; all benchmark artifacts
#: must report each of them.
ENGINES = ("bingo", "knightking", "gsampler", "flowwalker")

#: The PR 4 acceptance bar: concurrent serve throughput vs strict
#: alternation for the bingo engine on the LJ stand-in.
PR4_MIN_BINGO_SPEEDUP = 1.5

#: The PR 5 fairness bar: under a flooding co-tenant the light tenant's
#: p99 must stay within this factor of its solo-run p99.
PR5_MAX_FAIR_P99_RATIO = 3.0

#: The PR 6 flatness bar: at a fixed batch size the per-flip delta warm
#: median at the largest vertex count must stay within this factor of the
#: smallest one (O(touched) publication, not O(V)).
PR6_MAX_FLAT_RATIO = 1.3

#: The PR 6 speedup bar: at the largest vertex count the delta warm must
#: beat the wholesale table re-concatenation by at least this factor.
PR6_MIN_DELTA_VS_FULL = 5.0

#: The flip sweep must grow the vertex set by at least this factor for
#: the flatness assertion to mean anything.
PR6_MIN_VERTEX_GROWTH = 4.0

#: The PR 7 resilience bar: fraction of chaos-run queries that must
#: resolve successfully despite injected faults.
PR7_MIN_SUCCESS_RATE = 0.99

#: The PR 8 scaling bar: keep-alive clients the event loop must hold per
#: server OS thread at the high-concurrency point.
PR8_MIN_CLIENTS_PER_THREAD = 10.0

#: The PR 8 latency bar: the event loop's high-concurrency p99 must stay
#: within this factor of its 64-client p99 (same query load).
PR8_MAX_HIGH_VS_LOW_P99 = 2.0

#: The sweep must grow the client count by at least this factor for the
#: flatness assertion to mean anything.
PR8_MIN_CLIENT_GROWTH = 10.0

#: The PR 9 scale-out bar: accumulated slowest-shard CPU busy seconds of
#: the 1-shard arm divided by the widest arm's.  Deliberately not
#: wall-clock — CI runners may expose one core, where time-sliced shard
#: processes can never win on the wall; ``cpu_cores`` is recorded in the
#: artifact so the measurement is honest about its hardware.
PR9_MIN_SHARD_SPEEDUP = 2.0

#: The PR 9 O(touched) bar: a healthy epoch flip must ship a sliced-table
#: patch whose mean payload stays below this fraction of one full
#: ``export_frontier_state`` serialization.
PR9_MAX_PATCH_TO_FULL_RATIO = 0.5


def _require_positive(row: dict, fields: List[str], where: str, errors: List[str]) -> None:
    for field in fields:
        value = row.get(field)
        if not isinstance(value, (int, float)) or value <= 0:
            errors.append(f"{where}: field {field!r} missing or not positive ({value!r})")


def check_bench_pr2(report: dict) -> List[str]:
    """BENCH_PR2.json — columnar batch-update ingestion throughput."""
    errors: List[str] = []
    engines = report.get("engines", {})
    for engine in ENGINES:
        if engine not in engines:
            errors.append(f"BENCH_PR2: engine {engine!r} missing")
            continue
        _require_positive(
            engines[engine],
            [
                "columnar_updates_per_second",
                "legacy_batch_updates_per_second",
                "streaming_updates_per_second",
                "walk_steps_per_second",
            ],
            f"BENCH_PR2.engines.{engine}",
            errors,
        )
    return errors


def check_bench_pr3(report: dict) -> List[str]:
    """BENCH_PR3.json — shard-parallel walk throughput scaling."""
    errors: List[str] = []
    counts = report.get("worker_counts")
    if not isinstance(counts, list) or not counts:
        errors.append("BENCH_PR3: worker_counts missing or empty")
        counts = []
    engines = report.get("engines", {})
    for engine in ENGINES:
        if engine not in engines:
            errors.append(f"BENCH_PR3: engine {engine!r} missing")
            continue
        rows = engines[engine]
        for workers in counts:
            row = rows.get(str(workers))
            if row is None:
                errors.append(f"BENCH_PR3.engines.{engine}: worker count {workers} missing")
                continue
            _require_positive(
                row,
                ["steps_per_second", "wall_steps_per_second", "speedup_vs_baseline"],
                f"BENCH_PR3.engines.{engine}[{workers}]",
                errors,
            )
    return errors


def check_bench_pr4(report: dict) -> List[str]:
    """BENCH_PR4.json — streaming serve throughput, latency and speedup."""
    errors: List[str] = []
    engines = report.get("engines", {})
    for engine in ENGINES:
        if engine not in engines:
            errors.append(f"BENCH_PR4: engine {engine!r} missing")
            continue
        row = engines[engine]
        where = f"BENCH_PR4.engines.{engine}"
        _require_positive(
            row,
            [
                "alternation_seconds",
                "concurrent_modelled_seconds",
                "updates_per_second",
                "steps_per_second",
                "concurrent_vs_alternation",
                "query_latency_p50_seconds",
                "query_latency_p99_seconds",
            ],
            where,
            errors,
        )
        p50 = row.get("query_latency_p50_seconds", 0)
        p99 = row.get("query_latency_p99_seconds", 0)
        if isinstance(p50, (int, float)) and isinstance(p99, (int, float)) and p50 > p99:
            errors.append(f"{where}: latency p50 ({p50}) exceeds p99 ({p99})")
    bingo = engines.get("bingo", {})
    speedup = bingo.get("concurrent_vs_alternation", 0)
    if not isinstance(speedup, (int, float)) or speedup < PR4_MIN_BINGO_SPEEDUP:
        errors.append(
            "BENCH_PR4: bingo concurrent_vs_alternation "
            f"({speedup!r}) is below the {PR4_MIN_BINGO_SPEEDUP}x acceptance bar"
        )
    return errors


def check_bench_pr5(report: dict) -> List[str]:
    """BENCH_PR5.json — multi-tenant fairness + back-buffer warming."""
    errors: List[str] = []
    fairness = report.get("fairness")
    if not isinstance(fairness, dict):
        errors.append("BENCH_PR5: fairness section missing")
    else:
        for mode in ("solo", "fair_share", "shared_queue"):
            row = fairness.get(mode)
            if not isinstance(row, dict):
                errors.append(f"BENCH_PR5.fairness: mode {mode!r} missing")
                continue
            _require_positive(row, ["p50", "p99"], f"BENCH_PR5.fairness.{mode}", errors)
        ratio = fairness.get("fair_vs_solo_p99")
        if not isinstance(ratio, (int, float)) or ratio <= 0:
            errors.append(
                f"BENCH_PR5: fair_vs_solo_p99 missing or not positive ({ratio!r})"
            )
        elif ratio > PR5_MAX_FAIR_P99_RATIO:
            errors.append(
                f"BENCH_PR5: light tenant's fair-share p99 is {ratio}x its solo "
                f"p99, above the {PR5_MAX_FAIR_P99_RATIO}x fairness bar"
            )
    warming = report.get("warming")
    if not isinstance(warming, dict):
        errors.append("BENCH_PR5: warming section missing")
    else:
        for mode in ("cold", "warm"):
            row = warming.get(mode)
            if not isinstance(row, dict):
                errors.append(f"BENCH_PR5.warming: mode {mode!r} missing")
                continue
            _require_positive(row, ["p50", "p99"], f"BENCH_PR5.warming.{mode}", errors)
        cold = (warming.get("cold") or {}).get("p99")
        warm = (warming.get("warm") or {}).get("p99")
        if isinstance(cold, (int, float)) and isinstance(warm, (int, float)):
            if warm >= cold:
                errors.append(
                    f"BENCH_PR5: warm-flip p99 ({warm}) does not beat the "
                    f"cold-flip p99 ({cold}) — back-buffer warming regressed"
                )
    return errors


def check_bench_pr6(report: dict) -> List[str]:
    """BENCH_PR6.json — epoch-delta publication cost vs graph size."""
    errors: List[str] = []
    rows = report.get("scales")
    if not isinstance(rows, list) or len(rows) < 2:
        errors.append("BENCH_PR6: scales sweep missing or shorter than 2 points")
        return errors
    for row in rows:
        if not isinstance(row, dict):
            errors.append("BENCH_PR6: scales entry is not an object")
            continue
        where = f"BENCH_PR6.scales[{row.get('scale')!r}]"
        _require_positive(
            row,
            [
                "num_vertices",
                "delta_warm_seconds_per_flip",
                "full_rebuild_seconds_per_flip",
                "full_vs_delta",
            ],
            where,
            errors,
        )
    if errors:
        return errors
    growth = report.get("vertex_growth")
    if not isinstance(growth, (int, float)) or growth < PR6_MIN_VERTEX_GROWTH:
        errors.append(
            f"BENCH_PR6: vertex_growth ({growth!r}) is below the "
            f"{PR6_MIN_VERTEX_GROWTH}x sweep the flatness bar assumes"
        )
    flatness = report.get("delta_flatness")
    if not isinstance(flatness, (int, float)) or flatness <= 0:
        errors.append(
            f"BENCH_PR6: delta_flatness missing or not positive ({flatness!r})"
        )
    elif flatness > PR6_MAX_FLAT_RATIO:
        errors.append(
            f"BENCH_PR6: delta warm per flip grew {flatness}x across the "
            f"vertex sweep, above the {PR6_MAX_FLAT_RATIO}x flatness bar — "
            "publication is no longer O(touched)"
        )
    speedup = report.get("full_vs_delta_at_largest")
    if not isinstance(speedup, (int, float)) or speedup <= 0:
        errors.append(
            "BENCH_PR6: full_vs_delta_at_largest missing or not positive "
            f"({speedup!r})"
        )
    elif speedup < PR6_MIN_DELTA_VS_FULL:
        errors.append(
            f"BENCH_PR6: delta warm is only {speedup}x faster than the full "
            f"rebuild at the largest graph, below the {PR6_MIN_DELTA_VS_FULL}x "
            "acceptance bar"
        )
    return errors


def check_bench_pr7(report: dict) -> List[str]:
    """BENCH_PR7.json — chaos suite: self-healing under injected faults."""
    errors: List[str] = []
    tickets = report.get("tickets")
    if not isinstance(tickets, dict):
        errors.append("BENCH_PR7: tickets section missing")
    else:
        _require_positive(
            tickets, ["submitted", "resolved"], "BENCH_PR7.tickets", errors
        )
        rate = tickets.get("success_rate")
        if not isinstance(rate, (int, float)) or rate <= 0:
            errors.append(
                f"BENCH_PR7: tickets.success_rate missing or not positive ({rate!r})"
            )
        elif rate < PR7_MIN_SUCCESS_RATE:
            errors.append(
                f"BENCH_PR7: chaos-run success rate {rate} is below the "
                f"{PR7_MIN_SUCCESS_RATE} resilience bar"
            )
        hung = tickets.get("hung")
        if not isinstance(hung, int) or hung != 0:
            errors.append(
                f"BENCH_PR7: tickets.hung is {hung!r} — every ticket must "
                "resolve (walks or clean error), never hang"
            )
    writer = report.get("writer")
    if not isinstance(writer, dict):
        errors.append("BENCH_PR7: writer section missing")
    else:
        _require_positive(
            writer,
            ["recoveries", "batches_quarantined", "mttr_seconds"],
            "BENCH_PR7.writer",
            errors,
        )
        published = writer.get("epochs_published")
        if not isinstance(published, (int, float)) or published <= 0:
            errors.append(
                "BENCH_PR7: writer.epochs_published missing or not positive "
                f"({published!r}) — quarantine must not stop healthy batches "
                "from publishing"
            )
    worker = report.get("worker")
    if not isinstance(worker, dict):
        errors.append("BENCH_PR7: worker section missing")
    else:
        _require_positive(
            worker, ["respawns", "wave_retries"], "BENCH_PR7.worker", errors
        )
    http = report.get("http")
    if not isinstance(http, dict):
        errors.append("BENCH_PR7: http section missing")
    else:
        _require_positive(
            http,
            ["queries", "resolved", "client_retries", "injected_faults"],
            "BENCH_PR7.http",
            errors,
        )
    if report.get("replay_identical") is not True:
        errors.append(
            "BENCH_PR7: replay_identical is not true — the same seed must "
            "reproduce the identical fault sequence"
        )
    return errors


def check_bench_pr8(report: dict) -> List[str]:
    """BENCH_PR8.json — event-loop connection scaling + binary wire format."""
    errors: List[str] = []
    low = report.get("low_clients")
    high = report.get("high_clients")
    _require_positive(report, ["low_clients", "high_clients"], "BENCH_PR8", errors)
    if isinstance(low, (int, float)) and isinstance(high, (int, float)) and low > 0:
        if high / low < PR8_MIN_CLIENT_GROWTH:
            errors.append(
                f"BENCH_PR8: high_clients ({high}) is less than "
                f"{PR8_MIN_CLIENT_GROWTH}x low_clients ({low}) — the sweep "
                "no longer exercises a 10x connection-count growth"
            )
    servers = report.get("servers")
    if not isinstance(servers, dict):
        errors.append("BENCH_PR8: servers section missing")
        return errors
    for kind in ("threaded", "eventloop"):
        row = servers.get(kind)
        if not isinstance(row, dict):
            errors.append(f"BENCH_PR8.servers: front-end {kind!r} missing")
            continue
        where = f"BENCH_PR8.servers.{kind}"
        for phase in ("low", "high"):
            phase_row = row.get(phase)
            if not isinstance(phase_row, dict):
                errors.append(f"{where}: phase {phase!r} missing")
                continue
            _require_positive(
                phase_row,
                ["clients", "queries", "p50", "p99", "server_threads"],
                f"{where}.{phase}",
                errors,
            )
        wire = row.get("wire")
        if not isinstance(wire, dict):
            errors.append(f"{where}: wire section missing")
        else:
            _require_positive(
                wire,
                [
                    "json_seconds_per_query",
                    "binary_seconds_per_query",
                    "json_bytes",
                    "binary_bytes",
                ],
                f"{where}.wire",
                errors,
            )
            if wire.get("shapes_match") is not True:
                errors.append(
                    f"{where}.wire: shapes_match is not true — the binary "
                    "format no longer decodes to the JSON path's matrix shape"
                )
    eventloop = servers.get("eventloop")
    if isinstance(eventloop, dict):
        per_thread = eventloop.get("clients_per_server_thread")
        if not isinstance(per_thread, (int, float)) or per_thread <= 0:
            errors.append(
                "BENCH_PR8: eventloop.clients_per_server_thread missing or "
                f"not positive ({per_thread!r})"
            )
        elif per_thread < PR8_MIN_CLIENTS_PER_THREAD:
            errors.append(
                f"BENCH_PR8: the event loop holds only {per_thread} keep-alive "
                f"clients per server thread, below the "
                f"{PR8_MIN_CLIENTS_PER_THREAD}x scaling bar"
            )
        ratio = eventloop.get("high_vs_low_p99")
        if not isinstance(ratio, (int, float)) or ratio <= 0:
            errors.append(
                "BENCH_PR8: eventloop.high_vs_low_p99 missing or not positive "
                f"({ratio!r})"
            )
        elif ratio > PR8_MAX_HIGH_VS_LOW_P99:
            errors.append(
                f"BENCH_PR8: the event loop's high-concurrency p99 is {ratio}x "
                f"its low-concurrency p99, above the "
                f"{PR8_MAX_HIGH_VS_LOW_P99}x flatness bar"
            )
    return errors


def check_bench_pr9(report: dict) -> List[str]:
    """BENCH_PR9.json — sharded multi-process serve scale-out."""
    errors: List[str] = []
    arms = report.get("arms")
    counts = report.get("shard_counts")
    if not isinstance(arms, dict) or not isinstance(counts, list) or len(counts) < 2:
        errors.append("BENCH_PR9: arms/shard_counts missing or fewer than 2 arms")
        return errors
    for count in counts:
        arm = arms.get(str(count))
        if not isinstance(arm, dict):
            errors.append(f"BENCH_PR9.arms: shard count {count} missing")
            continue
        where = f"BENCH_PR9.arms[{count}]"
        _require_positive(
            arm,
            [
                "queries",
                "wall_seconds",
                "walk_critical_path_seconds",
                "shard_busy_seconds_total",
                "epochs_published",
                "shard_flips",
                "full_state_bytes",
            ],
            where,
            errors,
        )
        if arm.get("deterministic") is not True:
            errors.append(
                f"{where}: deterministic is not true — the same stream key "
                "must reproduce the identical walk matrix"
            )
    if errors:
        return errors
    cores = report.get("cpu_cores")
    if not isinstance(cores, int) or cores < 1:
        errors.append(f"BENCH_PR9: cpu_cores missing or not positive ({cores!r})")
    speedup = report.get("critical_path_speedup")
    if not isinstance(speedup, (int, float)) or speedup <= 0:
        errors.append(
            f"BENCH_PR9: critical_path_speedup missing or not positive ({speedup!r})"
        )
    elif speedup < PR9_MIN_SHARD_SPEEDUP:
        errors.append(
            f"BENCH_PR9: the widest arm's critical path is only {speedup}x "
            f"faster than the 1-shard arm's, below the "
            f"{PR9_MIN_SHARD_SPEEDUP}x scale-out bar"
        )
    flip = report.get("flip")
    if not isinstance(flip, dict):
        errors.append("BENCH_PR9: flip section missing")
    else:
        _require_positive(
            flip,
            ["flips", "payload_bytes_total", "patch_bytes_per_flip", "full_state_bytes"],
            "BENCH_PR9.flip",
            errors,
        )
        snapshots = flip.get("full_snapshots")
        if not isinstance(snapshots, int) or snapshots != 0:
            errors.append(
                f"BENCH_PR9: flip.full_snapshots is {snapshots!r} — healthy "
                "flips must ship O(touched) patches, never whole snapshots"
            )
        ratio = flip.get("patch_to_full_ratio")
        if not isinstance(ratio, (int, float)) or ratio <= 0:
            errors.append(
                f"BENCH_PR9: flip.patch_to_full_ratio missing or not positive ({ratio!r})"
            )
        elif ratio > PR9_MAX_PATCH_TO_FULL_RATIO:
            errors.append(
                f"BENCH_PR9: mean flip payload is {ratio}x the full-state "
                f"serialization, above the {PR9_MAX_PATCH_TO_FULL_RATIO} "
                "O(touched) bar"
            )
    chaos = report.get("chaos")
    if not isinstance(chaos, dict):
        errors.append("BENCH_PR9: chaos section missing")
    else:
        _require_positive(
            chaos,
            ["queries", "respawns", "wave_retries", "shards_alive_after"],
            "BENCH_PR9.chaos",
            errors,
        )
        hung = chaos.get("hung")
        if not isinstance(hung, int) or hung != 0:
            errors.append(
                f"BENCH_PR9: chaos.hung is {hung!r} — a SIGKILLed shard must "
                "cost a retry, never a hung ticket"
            )
        if chaos.get("bitwise_identical_to_clean_run") is not True:
            errors.append(
                "BENCH_PR9: chaos.bitwise_identical_to_clean_run is not true "
                "— the respawn + retry must reproduce the unfaulted bytes"
            )
    return errors


CHECKS: Dict[str, Callable[[dict], List[str]]] = {
    "BENCH_PR2.json": check_bench_pr2,
    "BENCH_PR3.json": check_bench_pr3,
    "BENCH_PR4.json": check_bench_pr4,
    "BENCH_PR5.json": check_bench_pr5,
    "BENCH_PR6.json": check_bench_pr6,
    "BENCH_PR7.json": check_bench_pr7,
    "BENCH_PR8.json": check_bench_pr8,
    "BENCH_PR9.json": check_bench_pr9,
}


def run_checks(root: Path) -> List[str]:
    """Validate every committed benchmark artifact under ``root``."""
    errors: List[str] = []
    for name, check in CHECKS.items():
        path = root / name
        if not path.exists():
            errors.append(f"{name}: committed artifact is missing")
            continue
        try:
            report = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            errors.append(f"{name}: invalid JSON ({exc})")
            continue
        errors.extend(check(report))
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root holding the BENCH_PR*.json artifacts",
    )
    args = parser.parse_args(argv)
    errors = run_checks(args.dir)
    if errors:
        for error in errors:
            print(f"check_bench: {error}", file=sys.stderr)
        return 1
    print(f"check_bench: {len(CHECKS)} artifacts ok ({', '.join(CHECKS)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
