"""Legacy setuptools shim.

The execution environment ships an older setuptools without the ``wheel``
package, so PEP 517 editable installs fail with ``invalid command
'bdist_wheel'``.  This shim lets ``pip install -e . --no-use-pep517`` (and
plain ``pip install -e .`` on older pips) fall back to the classic
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
